package fpga

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLaKeCardIncrement(t *testing.T) {
	b := NewBoard(LaKeDesign)
	// §4.2: LaKe raises the idle 39 W server to 59 W -> ~20 W increment.
	if got := b.CardWatts(0); math.Abs(got-20) > 0.5 {
		t.Errorf("LaKe card increment = %v W, want ~20", got)
	}
	// Load barely moves hardware power (§4.2: "does not increase
	// significantly under load").
	if span := b.CardWatts(1) - b.CardWatts(0); span > 1 {
		t.Errorf("LaKe dynamic span = %v W, want <= 1", span)
	}
}

func TestP4xosTenWattsBelowLaKe(t *testing.T) {
	lake := NewBoard(LaKeDesign)
	p4 := NewBoard(P4xosDesign)
	diff := lake.CardWatts(0) - p4.CardWatts(0)
	// §4.3: "its base power consumption is 10W lower than LaKe".
	if math.Abs(diff-10) > 1 {
		t.Errorf("LaKe - P4xos base = %v W, want ~10", diff)
	}
}

func TestP4xosStandalone(t *testing.T) {
	p4 := NewBoard(P4xosDesign)
	p4.SetStandalone(true)
	// §4.3: 18.2 W idle standalone, <= 1.2 W dynamic.
	if got := p4.CardWatts(0); math.Abs(got-18.2) > 0.3 {
		t.Errorf("P4xos standalone idle = %v W, want ~18.2", got)
	}
	if dyn := p4.CardWatts(1) - p4.CardWatts(0); dyn > 1.2+1e-9 {
		t.Errorf("P4xos dynamic = %v W, want <= 1.2", dyn)
	}
}

func TestEmuDNSTotals(t *testing.T) {
	b := NewBoard(EmuDNSDesign)
	// §4.4: with the 39 W server, Emu DNS starts at 47.5 W and stays
	// below 48 W at full load.
	idle := 39 + b.CardWatts(0)
	full := 39 + b.CardWatts(1)
	if math.Abs(idle-47.5) > 0.5 {
		t.Errorf("Emu DNS idle total = %v W, want ~47.5", idle)
	}
	if full >= 48.5 {
		t.Errorf("Emu DNS full-load total = %v W, want < 48.5", full)
	}
}

func TestPEAccounting(t *testing.T) {
	b := NewBoard(LaKeDesign)
	if b.ActivePEs() != 5 {
		t.Fatalf("ActivePEs = %d, want 5", b.ActivePEs())
	}
	all := b.CardWatts(0)
	b.SetActivePEs(1)
	one := b.CardWatts(0)
	// §5.1: each PE contributes ~0.25 W.
	if math.Abs((all-one)-4*PEWatts) > 1e-9 {
		t.Errorf("4 PEs = %v W, want %v", all-one, 4*PEWatts)
	}
	b.SetActivePEs(-3)
	if b.ActivePEs() != 0 {
		t.Error("negative PE count should clamp to 0")
	}
	b.SetActivePEs(99)
	if b.ActivePEs() != 5 {
		t.Error("PE count should clamp to design maximum")
	}
}

func TestPEThroughputScaling(t *testing.T) {
	b := NewBoard(LaKeDesign)
	b.SetActivePEs(1)
	if b.PeakKpps() != PEThroughputKqps {
		t.Errorf("1 PE peak = %v, want %v", b.PeakKpps(), PEThroughputKqps)
	}
	b.SetActivePEs(5)
	// §3.1: five PEs reach 10GE line rate (~13 Mqps), not 5x3.3.
	if b.PeakKpps() != LineRateKpps {
		t.Errorf("5 PE peak = %v, want line rate %v", b.PeakKpps(), LineRateKpps)
	}
	b.SetModuleActive(false)
	if b.PeakKpps() != 0 {
		t.Error("inactive module should have zero service capacity")
	}
}

func TestClockGatingSavesUnderOneWatt(t *testing.T) {
	b := NewBoard(LaKeDesign)
	base := b.CardWatts(0)
	b.SetClockGating(true)
	saved := base - b.CardWatts(0)
	if saved <= 0 || saved >= 1 {
		t.Errorf("clock gating saves %v W, want (0, 1)", saved)
	}
	if !b.ClockGated() {
		t.Error("ClockGated() state not tracked")
	}
}

func TestMemoryResetSavesFortyPercent(t *testing.T) {
	b := NewBoard(LaKeDesign)
	base := b.CardWatts(0)
	b.SetMemoryReset(true)
	saved := base - b.CardWatts(0)
	want := (DRAMWatts + SRAMWatts) * MemoryResetSaveFraction
	if math.Abs(saved-want) > 1e-9 {
		t.Errorf("memory reset saves %v W, want %v", saved, want)
	}
	if !b.MemoriesReset() {
		t.Error("MemoriesReset() state not tracked")
	}
}

func TestExternalMemoriesCostAtLeastTenWatts(t *testing.T) {
	// §5.1: "The biggest contributor to power consumption is the external
	// memories—no less than 10W."
	if DRAMWatts+SRAMWatts < 10 {
		t.Errorf("memories = %v W, want >= 10", DRAMWatts+SRAMWatts)
	}
}

func TestLaKeLogicOverNICIs2p2W(t *testing.T) {
	// §5.2: LaKe's logic over the reference NIC is 2.2 W.
	lake := NewBoard(LaKeDesign)
	lake.SetMemoryReset(true) // isolate logic: remove 60% of memory power
	logic := LaKeDesign.LogicFixedWatts + float64(LaKeDesign.NumPEs)*PEWatts
	if math.Abs(logic-2.2) > 1e-9 {
		t.Errorf("LaKe logic = %v W, want 2.2", logic)
	}
	if LaKeDesign.ResourceFraction > 0.03 {
		t.Errorf("LaKe resources = %v, want <= 3%%", LaKeDesign.ResourceFraction)
	}
}

func TestInactiveModuleGap(t *testing.T) {
	// §9.2: keeping LaKe programmed but inactive (memories reset, module
	// clock gated) costs only a few watts more than the plain NIC.
	nic := NewBoard(ReferenceNIC)
	lake := NewBoard(LaKeDesign)
	lake.SetMemoryReset(true)
	lake.SetClockGating(true)
	lake.SetModuleActive(false)
	gap := lake.CardWatts(0) - nic.CardWatts(0)
	if gap < 3 || gap > 9 {
		t.Errorf("inactive-LaKe vs NIC gap = %v W, want a small single-digit gap", gap)
	}
}

func TestStandaloneRoughlyServerIdle(t *testing.T) {
	// §5.1: a host-less LaKe board idles at roughly the power of an idle
	// server without cards (~28 W).
	lake := NewBoard(LaKeDesign)
	lake.SetStandalone(true)
	if got := lake.CardWatts(0); math.Abs(got-28) > 1 {
		t.Errorf("standalone LaKe idle = %v W, want ~28", got)
	}
}

func TestMemoryCapacityRatios(t *testing.T) {
	if DRAMValueEntries/OnChipValueEntries < 60_000 {
		t.Error("DRAM should hold ~65k x the on-chip value entries")
	}
	if SRAMFreeChunks/OnChipFreeChunks < 30_000 {
		t.Error("SRAM should hold ~32k x the on-chip free chunks")
	}
}

func TestScaledConfig(t *testing.T) {
	s := LaKeDesign.Scaled(UltraScalePlusFactor)
	if s.LogicFixedWatts >= LaKeDesign.LogicFixedWatts {
		t.Error("scaled config should draw less logic power")
	}
	if s.PeakKpps != LaKeDesign.PeakKpps {
		t.Error("scaling should keep throughput")
	}
}

func TestLoadFuncAndPowerSource(t *testing.T) {
	b := NewBoard(P4xosDesign)
	if b.PowerWatts(0) != b.CardWatts(0) {
		t.Error("no load func should mean zero load")
	}
	b.SetLoadFunc(func() float64 { return 1 })
	if b.PowerWatts(0) != b.CardWatts(1) {
		t.Error("PowerWatts should use the installed load func")
	}
}

// Property: power is monotone in load and never below the NIC base.
func TestBoardPowerProperty(t *testing.T) {
	f := func(load8 uint8, pes uint8, gate, reset, active bool) bool {
		b := NewBoard(LaKeDesign)
		b.SetActivePEs(int(pes % 6))
		b.SetClockGating(gate)
		b.SetMemoryReset(reset)
		b.SetModuleActive(active)
		load := float64(load8) / 255
		p := b.CardWatts(load)
		return p >= NICBaseCardWatts && b.CardWatts(load/2) <= p+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
