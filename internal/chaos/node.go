package chaos

import (
	"net/netip"
	"time"

	"incod/internal/dataplane"
	"incod/internal/nictier"
	"incod/internal/simnet"
)

// ServerNode is a serving engine on the simulated network: it receives
// datagrams as a simnet.Node, dispatches them through the same contract
// the live dataplane engine uses — installed fast path first, host
// handler for everything unserved — and sends non-empty replies back to
// the packet source. It implements nictier.Dataplane, so a real
// nictier.Service drives placement shifts on it unmodified.
//
// With a zero BatchWindow every datagram is handled at delivery time
// (the single-datagram path). With a nonzero window, deliveries queue
// and flush together after the window elapses, exercising the batched
// TryHandleBatch/HandleBatch path; Barrier flushes synchronously, which
// is exactly the pre-warm fence the shift sequence needs.
//
// Everything runs inside the single-threaded simulation loop, so no
// locking is needed — but replies must be copied before Send, because
// handlers reuse their scratch buffers while simnet defers delivery.
type ServerNode struct {
	sim  *simnet.Simulator
	net  *simnet.Network
	addr simnet.Addr

	host      dataplane.Handler
	hostBatch dataplane.BatchHandler // nil: per-datagram host calls
	window    time.Duration

	fp      dataplane.FastPath
	fpBatch dataplane.BatchFastPath // fp asserted, when it batches

	pending []*simnet.Packet
	armed   bool // a flush is scheduled

	scratch    []byte
	items      []dataplane.BatchItem
	itemPtrs   []*dataplane.BatchItem
	hostPtrs   []*dataplane.BatchItem
	scratches  [][]byte
	fastServed uint64
	hostServed uint64
}

var _ simnet.Node = (*ServerNode)(nil)
var _ nictier.Dataplane = (*ServerNode)(nil)

// NewServerNode builds a node at addr serving host, with deliveries
// batched over window (0 = single-datagram dispatch). If host also
// implements dataplane.BatchHandler, batched flushes use it.
func NewServerNode(sim *simnet.Simulator, net *simnet.Network, addr simnet.Addr,
	host dataplane.Handler, window time.Duration) *ServerNode {
	s := &ServerNode{sim: sim, net: net, addr: addr, host: host, window: window}
	s.hostBatch, _ = host.(dataplane.BatchHandler)
	return s
}

// Addr implements simnet.Node.
func (s *ServerNode) Addr() simnet.Addr { return s.addr }

// Served reports how many datagrams the fast path consumed and how many
// reached the host handler.
func (s *ServerNode) Served() (fast, host uint64) { return s.fastServed, s.hostServed }

// SetFastPath implements nictier.Dataplane. The simulation loop is
// single-threaded, so installation is trivially atomic with dispatch.
func (s *ServerNode) SetFastPath(fp dataplane.FastPath) {
	s.fp = fp
	s.fpBatch, _ = fp.(dataplane.BatchFastPath)
}

// ClearFastPath implements nictier.Dataplane. No call can be inside the
// tier when it returns — dispatch and this call share the event loop.
func (s *ServerNode) ClearFastPath() {
	s.fp, s.fpBatch = nil, nil
}

// Barrier implements nictier.Dataplane: every datagram delivered before
// the call has fully landed once the pending batch is flushed.
func (s *ServerNode) Barrier() { s.flush() }

// Receive implements simnet.Node.
func (s *ServerNode) Receive(pkt *simnet.Packet) {
	if s.window <= 0 {
		s.handleOne(pkt)
		return
	}
	s.pending = append(s.pending, pkt)
	if !s.armed {
		s.armed = true
		s.sim.Schedule(s.window, s.flush)
	}
}

// handleOne is the single-datagram dispatch path.
func (s *ServerNode) handleOne(pkt *simnet.Packet) {
	if s.fp != nil {
		out, served, reply := s.fp.TryHandleDatagram(pkt.Payload, netip.AddrPort{}, &s.scratch)
		if served {
			s.fastServed++
			if reply {
				s.reply(pkt, out)
			}
			return
		}
	}
	s.hostServed++
	if out, ok := s.host.HandleDatagram(pkt.Payload, &s.scratch); ok {
		s.reply(pkt, out)
	}
}

// flush runs the batched dispatch over every pending delivery: fast path
// over the whole batch first, host pass over the unserved remainder,
// replies sent in arrival order.
func (s *ServerNode) flush() {
	s.armed = false
	batch := s.pending
	s.pending = s.pending[:0]
	if len(batch) == 0 {
		return
	}
	n := len(batch)
	if cap(s.items) < n {
		s.items = make([]dataplane.BatchItem, n)
		s.itemPtrs = make([]*dataplane.BatchItem, n)
		s.scratches = make([][]byte, n)
	}
	items, ptrs := s.items[:n], s.itemPtrs[:n]
	for i, pkt := range batch {
		items[i] = dataplane.BatchItem{In: pkt.Payload, Scratch: &s.scratches[i]}
		ptrs[i] = &items[i]
	}
	switch {
	case s.fpBatch != nil:
		s.fpBatch.TryHandleBatch(ptrs)
	case s.fp != nil:
		for _, it := range ptrs {
			out, served, reply := s.fp.TryHandleDatagram(it.In, netip.AddrPort{}, it.Scratch)
			if served {
				it.Served = true
				if reply {
					it.Out = out
				}
			}
		}
	}
	s.hostPtrs = s.hostPtrs[:0]
	for _, it := range ptrs {
		if it.Served {
			s.fastServed++
		} else {
			s.hostPtrs = append(s.hostPtrs, it)
			s.hostServed++
		}
	}
	if len(s.hostPtrs) > 0 {
		if s.hostBatch != nil {
			s.hostBatch.HandleBatch(s.hostPtrs)
		} else {
			for _, it := range s.hostPtrs {
				if out, ok := s.host.HandleDatagram(it.In, it.Scratch); ok {
					it.Out = out
				}
			}
		}
	}
	for i, pkt := range batch {
		if len(items[i].Out) > 0 {
			s.reply(pkt, items[i].Out)
		}
	}
}

// reply copies out (handlers reuse scratch; delivery is deferred) and
// sends it back to the request's source.
func (s *ServerNode) reply(req *simnet.Packet, out []byte) {
	s.net.Send(&simnet.Packet{
		Src:     s.addr,
		Dst:     req.Src,
		SrcPort: req.DstPort,
		DstPort: req.SrcPort,
		Payload: append([]byte(nil), out...),
	})
}
