package chaos

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"time"

	"incod/internal/core"
	"incod/internal/daemon"
	"incod/internal/dns"
	"incod/internal/fleet"
	"incod/internal/memcache"
	"incod/internal/paxos"
	"incod/internal/simnet"
)

// scale returns quick when cfg.Quick, else full — every property sizes
// its workload through it.
func (c Config) scale(quick, full int) int {
	if c.Quick {
		return quick
	}
	return full
}

// mix folds two sub-run trace hashes into one deterministic value.
func mix(a, b uint64) uint64 { return a ^ (b*fleckPrime + fleckOffset) }

const (
	fleckPrime  uint64 = 0x100000001b3
	fleckOffset uint64 = 0x9e3779b97f4a7c15
	// seedStride derives a second sub-run seed so the two legs of a
	// property draw independent schedules.
	seedStride int64 = 0x9e3779b9
)

// --- serving workloads (KVS / DNS) ---------------------------------------

// recordedReply is one datagram the workload client got back.
type recordedReply struct {
	id   uint16
	body []byte
}

// replyRecorder is the workload client node: it records every reply with
// the request ID it answers.
type replyRecorder struct {
	address simnet.Addr
	decode  func([]byte) (uint16, bool)
	replies []recordedReply
}

func (r *replyRecorder) Addr() simnet.Addr { return r.address }

func (r *replyRecorder) Receive(pkt *simnet.Packet) {
	if id, ok := r.decode(pkt.Payload); ok {
		r.replies = append(r.replies, recordedReply{id: id, body: append([]byte(nil), pkt.Payload...)})
	}
}

// kvsReplyID extracts the echoed frame request ID.
func kvsReplyID(b []byte) (uint16, bool) {
	f, _, err := memcache.DecodeFrame(b)
	return f.RequestID, err == nil
}

// dnsReplyID extracts the echoed DNS message ID.
func dnsReplyID(b []byte) (uint16, bool) {
	if len(b) < 2 {
		return 0, false
	}
	return binary.BigEndian.Uint16(b[:2]), true
}

// servingOpts parameterizes one KVS or DNS serving run.
type servingOpts struct {
	preload  int
	window   time.Duration
	faults   simnet.FaultPlan
	requests int
	spacing  time.Duration
	// mutate mixes idempotent SETs (KVS) and unknown names into the
	// read workload.
	mutate bool
	// toggleEvery alternates a network/host placement pin.
	toggleEvery time.Duration
	// pinAtStart lights the tier before traffic.
	pinAtStart bool
	// crashAt kills the lit tier mid-run; watchEvery is the failback
	// watchdog period.
	crashAt    time.Duration
	watchEvery time.Duration
	// expectAll requires every request answered (loss-free plans only).
	expectAll bool
}

func (o servingOpts) total() time.Duration {
	return time.Duration(o.requests+2)*o.spacing + 2*time.Millisecond
}

// verifyReplies byte-compares every recorded reply against the oracle's
// answer for the request it echoes.
func verifyReplies(replies []recordedReply, reqs [][]byte, oracle *Oracle, expectAll bool) error {
	answered := make(map[uint16]bool)
	for _, rep := range replies {
		if int(rep.id) >= len(reqs) {
			return fmt.Errorf("reply echoes unknown request id %d", rep.id)
		}
		want := oracle.ReplyID(rep.id, reqs[rep.id])
		if !bytes.Equal(rep.body, want) {
			return fmt.Errorf("request %d: reply diverged from the host oracle: got %q want %q",
				rep.id, rep.body, want)
		}
		answered[rep.id] = true
	}
	if expectAll && len(answered) != len(reqs) {
		return fmt.Errorf("answered %d of %d requests on a loss-free network", len(answered), len(reqs))
	}
	return nil
}

// crashCheck carries the failback bookkeeping of a mid-run tier crash.
type crashCheck struct {
	crashedAt  simnet.Time
	failbackAt simnet.Time
}

func (c *crashCheck) verify(watchEvery time.Duration, placement string) error {
	if c.failbackAt == 0 {
		return fmt.Errorf("crashed tier never failed back to the host")
	}
	if lag := c.failbackAt.Sub(c.crashedAt); lag > 2*watchEvery {
		return fmt.Errorf("failback took %v, bound is %v", lag, 2*watchEvery)
	}
	if placement != "host" {
		return fmt.Errorf("placement %q after crash, want host", placement)
	}
	return nil
}

// scheduleServing installs the shared drivers — placement toggles, crash
// plus failback watchdog — against any stack's orchestrator and tier.
func scheduleServing(sim *simnet.Simulator, orch *daemon.Orchestrator, tier *CrashableTier,
	name string, o servingOpts, stops []func()) ([]func(), *crashCheck) {
	if o.pinAtStart {
		if err := orch.Pin(name, core.Network); err != nil {
			panic(err) // healthy tier on a fresh stack; cannot fail
		}
	}
	if o.toggleEvery > 0 {
		toNetwork := !o.pinAtStart
		stops = append(stops, sim.Every(o.toggleEvery, func() {
			if toNetwork {
				_ = orch.Pin(name, core.Network)
			} else {
				_ = orch.Pin(name, core.Host)
			}
			toNetwork = !toNetwork
		}))
	}
	var crash *crashCheck
	if o.crashAt > 0 {
		crash = &crashCheck{}
		sim.Schedule(o.crashAt, func() {
			tier.Crash()
			crash.crashedAt = sim.Now()
		})
		stops = append(stops, sim.Every(o.watchEvery, func() {
			if !tier.Crashed() || crash.failbackAt != 0 {
				return
			}
			if st, err := orch.Status(name); err == nil && st.Placement == "network" {
				_ = orch.Pin(name, core.Host)
				crash.failbackAt = sim.Now()
			}
		}))
	}
	return stops, crash
}

// runKVSServing drives a faulted KVS workload and byte-compares every
// reply against the fault-free single-datagram oracle.
func runKVSServing(seed int64, cfg Config, o servingOpts) (uint64, error) {
	st := NewKVSStack(seed, StackConfig{
		Link:        simnet.LinkConfig{Delay: 2 * time.Microsecond},
		Faults:      o.faults,
		BatchWindow: o.window,
		Trace:       cfg.Trace,
	}, o.preload)
	r := st.Sim.Rand()

	reqs := make([][]byte, o.requests)
	for i := range reqs {
		var req memcache.Request
		switch draw := r.Float64(); {
		case o.mutate && draw < 0.25:
			k := r.Intn(32)
			req = memcache.Request{Op: memcache.OpSet, Key: fmt.Sprintf("set-%d", k),
				Flags: 7, Value: []byte(fmt.Sprintf("sval-%d", k))}
		case o.mutate && draw < 0.40:
			req = memcache.Request{Op: memcache.OpGet, Key: fmt.Sprintf("missing-%d", r.Intn(16))}
		default:
			req = memcache.Request{Op: memcache.OpGet, Key: chaosKey(r.Intn(o.preload))}
		}
		reqs[i] = memcache.EncodeFrame(memcache.Frame{RequestID: uint16(i), Total: 1},
			memcache.EncodeRequest(req))
	}

	rec := &replyRecorder{address: "client", decode: kvsReplyID}
	st.Net.Attach(rec)
	for i := range reqs {
		i := i
		st.Sim.Schedule(time.Duration(i+1)*o.spacing, func() {
			st.Net.Send(&simnet.Packet{Src: rec.address, Dst: ServerAddr, Payload: reqs[i]})
		})
	}
	stops, crash := scheduleServing(st.Sim, st.Orch, st.Tier, "kvs", o, []func(){st.StopTick})
	runAndDrain(st.Sim, o.total(), stops...)

	hash := st.Net.TraceHash()
	if err := verifyReplies(rec.replies, reqs, NewKVSOracle(o.preload), o.expectAll); err != nil {
		return hash, err
	}
	if crash != nil {
		status, _ := st.Orch.Status("kvs")
		if err := crash.verify(o.watchEvery, status.Placement); err != nil {
			return hash, err
		}
	}
	return hash, nil
}

// runDNSServing is the DNS twin of runKVSServing.
func runDNSServing(seed int64, cfg Config, o servingOpts) (uint64, error) {
	st := NewDNSStack(seed, StackConfig{
		Link:        simnet.LinkConfig{Delay: 2 * time.Microsecond},
		Faults:      o.faults,
		BatchWindow: o.window,
		Trace:       cfg.Trace,
	}, o.preload)
	r := st.Sim.Rand()

	reqs := make([][]byte, o.requests)
	for i := range reqs {
		name := dns.SequentialName(r.Intn(o.preload))
		if o.mutate && r.Float64() < 0.3 {
			name = fmt.Sprintf("missing%d.example.com", r.Intn(16))
		}
		q, err := dns.Encode(dns.NewQuery(uint16(i), name))
		if err != nil {
			return 0, fmt.Errorf("encode query: %w", err)
		}
		reqs[i] = q
	}

	rec := &replyRecorder{address: "client", decode: dnsReplyID}
	st.Net.Attach(rec)
	for i := range reqs {
		i := i
		st.Sim.Schedule(time.Duration(i+1)*o.spacing, func() {
			st.Net.Send(&simnet.Packet{Src: rec.address, Dst: ServerAddr, Payload: reqs[i]})
		})
	}
	stops, crash := scheduleServing(st.Sim, st.Orch, st.Tier, "dns", o, []func(){st.StopTick})
	runAndDrain(st.Sim, o.total(), stops...)

	hash := st.Net.TraceHash()
	if err := verifyReplies(rec.replies, reqs, NewDNSOracle(o.preload), o.expectAll); err != nil {
		return hash, err
	}
	if crash != nil {
		status, _ := st.Orch.Status("dns")
		if err := crash.verify(o.watchEvery, status.Placement); err != nil {
			return hash, err
		}
	}
	return hash, nil
}

// --- property 1: paxos-vote-safety ---------------------------------------

// runPaxosVoteSafety shifts the acceptor tier up and down — including a
// crash between stage and flip — under loss, duplication and reordering,
// and asserts no acceptor vote is ever lost or doubled.
func runPaxosVoteSafety(seed int64, cfg Config) (uint64, error) {
	plan := simnet.FaultPlan{Default: simnet.Faults{
		LossRate:      0.05,
		DupRate:       0.10,
		ReorderRate:   0.20,
		ReorderWindow: 20 * time.Microsecond,
		JitterMax:     5 * time.Microsecond,
	}}
	st := NewPaxosStack(seed, StackConfig{
		Link:        simnet.LinkConfig{Delay: 2 * time.Microsecond},
		Faults:      plan,
		BatchWindow: 2 * time.Microsecond,
		Trace:       cfg.Trace,
	}, 2)
	r := st.Sim.Rand()

	perClient := cfg.scale(15, 40)
	proposed := make(map[uint16]map[uint64][]byte)
	for ci, cl := range st.Clients {
		cl := cl
		proposed[cl.ID] = make(map[uint64][]byte)
		for i := 0; i < perClient; i++ {
			seq := uint64(i)
			value := []byte(fmt.Sprintf("c%d-s%d", cl.ID, seq))
			proposed[cl.ID][seq] = value
			at := time.Duration(i)*30*time.Microsecond + time.Duration(ci)*7*time.Microsecond
			st.Sim.Schedule(at, func() { cl.Propose(seq, value) })
		}
	}

	// Placement toggles every 1ms: even toggles pin to the network, odd
	// ones back to the host. One seed-chosen up-shift is sabotaged with a
	// stage crash (Warm dies before any state leaves the host); the next
	// down toggle restarts the card so later up-shifts succeed.
	toggles := cfg.scale(4, 6)
	crashIdx := 2 * r.Intn(toggles/2)
	for j := 0; j < toggles; j++ {
		j := j
		st.Sim.Schedule(500*time.Microsecond+time.Duration(j)*time.Millisecond, func() {
			if j%2 == 0 {
				if j == crashIdx {
					st.Tier.ArmStageCrash()
				}
				_ = st.Orch.Pin("paxos", core.Network)
			} else {
				st.Tier.Restart()
				_ = st.Orch.Pin("paxos", core.Host)
			}
		})
	}

	total := time.Duration(toggles)*time.Millisecond + 2*time.Millisecond
	st.RunAndDrain(total)
	hash := st.Net.TraceHash()

	if len(st.Audit.Conflicts) > 0 {
		return hash, fmt.Errorf("doubled vote: %s", st.Audit.Conflicts[0])
	}
	for _, cl := range st.Clients {
		if len(cl.Conflicts) > 0 {
			return hash, fmt.Errorf("conflicting decision: %s", cl.Conflicts[0])
		}
		for seq, got := range cl.Decided {
			if want, ok := proposed[cl.ID][seq]; !ok || !bytes.Equal(got, want) {
				return hash, fmt.Errorf("client %d seq %d decided %q, proposed %q",
					cl.ID, seq, got, want)
			}
		}
	}
	if st.Learner.DecidedCount() == 0 {
		return hash, fmt.Errorf("nothing decided in the whole run")
	}

	// Retention audit: park the tier for good, then replay a poisoned 2A
	// (same ballot, different value) at every instance acceptor 0 voted
	// on. The settled-vote contract answers with the ORIGINAL value; any
	// other reply means the vote was lost across the shifts.
	st.Tier.Restart()
	if err := st.Orch.Pin("paxos", core.Host); err != nil {
		return hash, fmt.Errorf("final pin to host: %w", err)
	}
	var scratch []byte
	for inst, vote := range st.Audit.Votes(0) {
		poison := paxos.Encode(paxos.Msg{
			Type:     paxos.MsgPhase2A,
			Instance: inst,
			Ballot:   vote.VBallot,
			Value:    []byte("poison"),
		})
		out, ok := st.Acceptors[0].HandleDatagram(poison, &scratch)
		if !ok {
			return hash, fmt.Errorf("instance %d: vote lost (no reply to re-vote probe)", inst)
		}
		var v paxos.MsgView
		if err := paxos.DecodeView(out, &v); err != nil || v.Type != paxos.MsgPhase2B {
			return hash, fmt.Errorf("instance %d: unexpected probe reply", inst)
		}
		if !bytes.Equal(v.Value, vote.Value) || v.VBallot != vote.VBallot {
			return hash, fmt.Errorf("instance %d: vote lost: probe answered (b%d %q), voted (b%d %q)",
				inst, v.VBallot, v.Value, vote.VBallot, vote.Value)
		}
	}
	return hash, nil
}

// --- property 2: batch-equivalence ---------------------------------------

// runBatchEquivalence serves read-only KVS and DNS workloads through the
// batched dispatch path (host and tier), comparing every reply against
// the single-datagram host oracle.
func runBatchEquivalence(seed int64, cfg Config) (uint64, error) {
	base := servingOpts{
		window: 2 * time.Microsecond,
		faults: simnet.FaultPlan{Default: simnet.Faults{
			DupRate:       0.05,
			ReorderRate:   0.30,
			ReorderWindow: 20 * time.Microsecond,
			JitterMax:     3 * time.Microsecond,
		}},
		requests:    cfg.scale(120, 250),
		spacing:     8 * time.Microsecond,
		toggleEvery: 600 * time.Microsecond,
		expectAll:   true,
	}
	kvsOpts := base
	kvsOpts.preload = 48
	h1, err := runKVSServing(seed, cfg, kvsOpts)
	if err != nil {
		return h1, fmt.Errorf("kvs: %w", err)
	}
	dnsOpts := base
	dnsOpts.preload = 48
	h2, err := runDNSServing(seed+seedStride, cfg, dnsOpts)
	if err != nil {
		return mix(h1, h2), fmt.Errorf("dns: %w", err)
	}
	return mix(h1, h2), nil
}

// --- property 3: migration-correctness -----------------------------------

// runMigrationCorrectness hammers KVS and DNS with reads, idempotent
// writes and unknown keys while the placement migrates every few hundred
// microseconds under loss and duplication: zero wrong answers allowed.
func runMigrationCorrectness(seed int64, cfg Config) (uint64, error) {
	base := servingOpts{
		window: 2 * time.Microsecond,
		faults: simnet.FaultPlan{Default: simnet.Faults{
			LossRate:      0.08,
			DupRate:       0.12,
			ReorderRate:   0.20,
			ReorderWindow: 20 * time.Microsecond,
			JitterMax:     3 * time.Microsecond,
		}},
		requests:    cfg.scale(150, 300),
		spacing:     8 * time.Microsecond,
		mutate:      true,
		toggleEvery: 400 * time.Microsecond,
	}
	kvsOpts := base
	kvsOpts.preload = 64
	h1, err := runKVSServing(seed, cfg, kvsOpts)
	if err != nil {
		return h1, fmt.Errorf("kvs: %w", err)
	}
	dnsOpts := base
	dnsOpts.preload = 48
	h2, err := runDNSServing(seed+seedStride, cfg, dnsOpts)
	if err != nil {
		return mix(h1, h2), fmt.Errorf("dns: %w", err)
	}
	return mix(h1, h2), nil
}

// --- property 4: controller-no-flap --------------------------------------

// runControllerNoFlap drives the threshold policy and the fleet budget
// scheduler with adversarial load that oscillates around the crossover
// but stays inside the hysteresis band: neither may move placement once.
func runControllerNoFlap(seed int64, cfg Config) (uint64, error) {
	r := simnet.New(seed).Rand()
	ticks := cfg.scale(200, 600)

	// Part A: the daemon threshold policy. Crossover 100 kpps means
	// shift-up above 110 (1s of it) and shift-down below 70 (2s). Load
	// oscillating through [72, 108] crosses the crossover constantly but
	// never completes a threshold window.
	orch := daemon.NewOrchestrator(0)
	m, err := orch.Register("svc", daemon.ServiceConfig{
		Policy: core.NewThresholdPolicy(core.DefaultNetworkConfig(100)),
	})
	if err != nil {
		return 0, err
	}
	now := time.Unix(0, 0)
	orch.Tick(now)
	for i := 0; i < ticks; i++ {
		now = now.Add(100 * time.Millisecond)
		kpps := 72 + r.Float64()*36
		m.ObserveN(uint64(kpps * 100)) // kpps * 1000/s * 0.1s
		orch.Tick(now)
	}
	status, err := orch.Status("svc")
	if err != nil {
		return 0, err
	}
	if status.Shifts != 0 {
		return 0, fmt.Errorf("threshold policy flapped: %d shifts under in-band load", status.Shifts)
	}

	// Part B: the fleet budget scheduler. Four members, two lit, savings
	// jittered by ±0.9 W each tick so the ranking churns constantly —
	// but no margin (light 1.0, douse 0.25, swap 2.0) is ever cleared.
	sched := fleet.NewScheduler(fleet.DefaultSchedulerConfig(2))
	baseW := []float64{10, 9, 8.5, 8}
	for i := 0; i < ticks; i++ {
		cands := make([]fleet.Candidate, len(baseW))
		for j, w := range baseW {
			cands[j] = fleet.Candidate{
				Name:    fmt.Sprintf("m%d", j),
				Lit:     j < 2,
				SavingW: w + (r.Float64()*1.8 - 0.9),
			}
		}
		if a, ok := sched.Plan(cands); ok {
			return 0, fmt.Errorf("budget scheduler flapped at tick %d: %v member %s (%s)",
				i, a.Kind, a.Member, a.Reason)
		}
	}
	return 0, nil
}

// --- property 5: crash-failback ------------------------------------------

// runCrashFailback lights the KVS tier, kills the card mid-serving, and
// requires every single request answered correctly on a loss-free
// network — the crashed fast path must fall through, and the watchdog
// must fail the service back to the host within two of its ticks.
func runCrashFailback(seed int64, cfg Config) (uint64, error) {
	requests := cfg.scale(150, 300)
	const spacing = 10 * time.Microsecond
	o := servingOpts{
		preload:    64,
		requests:   requests,
		spacing:    spacing,
		pinAtStart: true,
		watchEvery: 200 * time.Microsecond,
		expectAll:  true,
	}
	// Kill the card somewhere in the middle half of the run; the draw
	// comes first so it is part of the seed's deterministic prefix.
	span := time.Duration(requests) * spacing
	o.crashAt = span/4 + time.Duration(simnet.New(seed+1).Rand().Int63n(int64(span/2)))
	return runKVSServing(seed, cfg, o)
}
