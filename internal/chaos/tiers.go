package chaos

import (
	"errors"
	"net/netip"

	"incod/internal/dataplane"
	"incod/internal/nictier"
	"incod/internal/telemetry"
)

// errTierCrashed is what every lifecycle call against a crashed card
// returns — the transition task finding the accelerator gone.
var errTierCrashed = errors.New("chaos: tier hardware crashed")

// CrashableTier wraps a real nictier.Tier with schedulable hardware
// failure, the two crash modes the §9.2 transition design must survive:
//
//   - ArmStageCrash kills the card between Stage and the dispatch flip:
//     the next Warm fails *before* the inner tier's bulk transfer runs,
//     so no state has left the host when nictier.Service rolls the
//     up-shift back. For the Paxos tier that means BeginHandoff never
//     executes — the acceptor table never leaves the host role.
//   - Crash kills the card while lit: the fast path stops consuming
//     (TryHandle* fall through untouched), so every datagram lands on
//     the host handler until the orchestrator fails the service back.
//
// Park always reaches the inner tier — it is host-side cleanup and must
// work even when the card is dead, or a crashed tier could never be
// drained back to software.
type CrashableTier struct {
	inner nictier.Tier

	crashed    bool
	armAtStage bool
	crashes    int
}

var _ nictier.Tier = (*CrashableTier)(nil)
var _ dataplane.BatchFastPath = (*CrashableTier)(nil)

// NewCrashableTier wraps inner.
func NewCrashableTier(inner nictier.Tier) *CrashableTier {
	return &CrashableTier{inner: inner}
}

// ArmStageCrash makes the next Stage succeed and then kill the card, so
// the following Warm fails mid-shift.
func (t *CrashableTier) ArmStageCrash() { t.armAtStage = true }

// Crash kills the card immediately (mid-serving when lit).
func (t *CrashableTier) Crash() {
	t.crashed = true
	t.crashes++
}

// Restart revives the card. Tier state is whatever the lifecycle left —
// recovery is the orchestrator's job (shift down, shift back up).
func (t *CrashableTier) Restart() { t.crashed = false }

// Crashed reports whether the card is currently dead.
func (t *CrashableTier) Crashed() bool { return t.crashed }

// Crashes reports how many times the card died.
func (t *CrashableTier) Crashes() int { return t.crashes }

// Stage implements nictier.Tier. A dead card cannot be staged; an armed
// stage-crash lets Stage succeed and then kills the card.
func (t *CrashableTier) Stage() error {
	if t.crashed {
		return errTierCrashed
	}
	if err := t.inner.Stage(); err != nil {
		return err
	}
	if t.armAtStage {
		t.armAtStage = false
		t.Crash()
	}
	return nil
}

// Warm implements nictier.Tier, failing before the inner bulk transfer
// when the card died after Stage.
func (t *CrashableTier) Warm() error {
	if t.crashed {
		return errTierCrashed
	}
	return t.inner.Warm()
}

// Park implements nictier.Tier. Host-side cleanup always runs.
func (t *CrashableTier) Park() error { return t.inner.Park() }

// TryHandleDatagram implements dataplane.FastPath: a crashed card serves
// nothing, everything falls through to the host.
func (t *CrashableTier) TryHandleDatagram(in []byte, src netip.AddrPort, scratch *[]byte) ([]byte, bool, bool) {
	if t.crashed {
		return nil, false, false
	}
	return t.inner.TryHandleDatagram(in, src, scratch)
}

// TryHandleBatch implements dataplane.BatchFastPath, leaving the whole
// batch untouched when crashed.
func (t *CrashableTier) TryHandleBatch(items []*dataplane.BatchItem) {
	if t.crashed {
		return
	}
	if b, ok := t.inner.(dataplane.BatchFastPath); ok {
		b.TryHandleBatch(items)
		return
	}
	for _, it := range items {
		out, served, reply := t.inner.TryHandleDatagram(it.In, netip.AddrPort{}, it.Scratch)
		if served {
			it.Served = true
			if reply {
				it.Out = out
			}
		}
	}
}

// Name, Counters, HitRatio, PowerWatts delegate to the wrapped tier.
func (t *CrashableTier) Name() string                        { return t.inner.Name() }
func (t *CrashableTier) Counters() *telemetry.AtomicCounters { return t.inner.Counters() }
func (t *CrashableTier) HitRatio() float64                   { return t.inner.HitRatio() }
func (t *CrashableTier) PowerWatts() float64                 { return t.inner.PowerWatts() }
