package chaos

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"incod/internal/core"
	"incod/internal/daemon"
	"incod/internal/dataplane"
	"incod/internal/dns"
	"incod/internal/kvs"
	"incod/internal/nictier"
	"incod/internal/paxos"
	"incod/internal/simnet"
)

// ServerAddr is where every stack's serving node lives on the simulated
// network.
const ServerAddr simnet.Addr = "server"

// StackConfig parameterizes one simulated serving stack.
type StackConfig struct {
	// Link is the default link between every pair of nodes.
	Link simnet.LinkConfig
	// Faults is the chaos plan installed on the network.
	Faults simnet.FaultPlan
	// BatchWindow batches deliveries at the server (0 = single-datagram).
	BatchWindow time.Duration
	// TickEvery drives the orchestrator on the virtual clock
	// (default 500µs).
	TickEvery time.Duration
	// Policy decides placement; nil leaves the orchestrator pin-driven
	// (the daemon default threshold policy holds at zero observed load).
	Policy core.Policy
	// Trace, when set, receives one line per packet event — the replay
	// artifact for a violating seed.
	Trace io.Writer
}

// attachTrace installs a line-per-event tracer when w is set.
func attachTrace(net *simnet.Network, w io.Writer) {
	if w == nil {
		return
	}
	net.SetTracer(func(kind string, at simnet.Time, src, dst simnet.Addr, payload []byte) {
		fmt.Fprintf(w, "%12v %-14s %s -> %s  %d bytes\n",
			time.Duration(at), kind, src, dst, len(payload))
	})
}

func (c StackConfig) tickEvery() time.Duration {
	if c.TickEvery > 0 {
		return c.TickEvery
	}
	return 500 * time.Microsecond
}

// driveOrchestrator ticks orch on the virtual clock: the orchestrator's
// wall-clock `now` is synthesized from the simulator's time, so decision
// windows are as deterministic as everything else.
func driveOrchestrator(sim *simnet.Simulator, orch *daemon.Orchestrator, every time.Duration) (cancel func()) {
	return sim.Every(every, func() {
		orch.Tick(time.Unix(0, 0).Add(time.Duration(sim.Now())))
	})
}

// runAndDrain advances the simulation by d, cancels the periodic drivers
// (orchestrator ticks, gap scans, workload generators), then drains every
// remaining in-flight event so all replies land before assertions run.
func runAndDrain(sim *simnet.Simulator, d time.Duration, stops ...func()) {
	sim.RunFor(d)
	for _, stop := range stops {
		if stop != nil {
			stop()
		}
	}
	sim.Run()
}

// chaosKey and chaosValue are the deterministic preloaded KVS keyspace.
func chaosKey(i int) string   { return fmt.Sprintf("key-%d", i) }
func chaosValue(i int) string { return fmt.Sprintf("value-%d-%08x", i, uint32(i)*2654435761) }

// preloadKVS installs n immutable entries into store.
func preloadKVS(store *kvs.ShardedStore, n int) {
	for i := 0; i < n; i++ {
		store.Set(chaosKey(i), kvs.Entry{Flags: uint32(i), Value: []byte(chaosValue(i))})
	}
}

// --- KVS ------------------------------------------------------------------

// KVSStack is a live kvs.Handler with its LaKe offload tier behind a
// CrashableTier, served by a ServerNode and placed by a real
// orchestrator, all on one simulated network.
type KVSStack struct {
	Sim      *simnet.Simulator
	Net      *simnet.Network
	Store    *kvs.ShardedStore
	Handler  *kvs.Handler
	Tier     *CrashableTier
	Node     *ServerNode
	Orch     *daemon.Orchestrator
	StopTick func()
}

// NewKVSStack wires the stack up with n preloaded entries. Placement
// starts on the host.
func NewKVSStack(seed int64, cfg StackConfig, n int) *KVSStack {
	sim := simnet.New(seed)
	net := simnet.NewNetwork(sim, cfg.Link)
	net.SetFaultPlan(cfg.Faults)
	attachTrace(net, cfg.Trace)
	store := kvs.NewShardedStore(1, 1<<15)
	preloadKVS(store, n)
	h := kvs.NewHandler(store)
	// Sweep-sized caches: the board-default L2 table is DRAM-scale and
	// would dominate every stack build and every Park reset.
	tier := NewCrashableTier(nictier.NewKVSSized(h, 256, 1<<12))
	node := NewServerNode(sim, net, ServerAddr, h, cfg.BatchWindow)
	net.Attach(node)
	orch := daemon.NewOrchestrator(0)
	if _, err := orch.Register("kvs", daemon.ServiceConfig{
		Service: nictier.NewService("kvs", node, tier),
		Policy:  cfg.Policy,
	}); err != nil {
		panic(err) // static wiring; cannot fail
	}
	return &KVSStack{
		Sim: sim, Net: net, Store: store, Handler: h, Tier: tier,
		Node: node, Orch: orch,
		StopTick: driveOrchestrator(sim, orch, cfg.tickEvery()),
	}
}

// --- DNS ------------------------------------------------------------------

// DNSStack is the Emu-DNS equivalent of KVSStack: a populated zone, its
// host handler and offload tier on the simulated network.
type DNSStack struct {
	Sim      *simnet.Simulator
	Net      *simnet.Network
	Zone     *dns.Zone
	Handler  *dns.Handler
	Tier     *CrashableTier
	Node     *ServerNode
	Orch     *daemon.Orchestrator
	StopTick func()
}

// NewDNSStack wires the stack up with n sequentially-populated names.
func NewDNSStack(seed int64, cfg StackConfig, n int) *DNSStack {
	sim := simnet.New(seed)
	net := simnet.NewNetwork(sim, cfg.Link)
	net.SetFaultPlan(cfg.Faults)
	attachTrace(net, cfg.Trace)
	zone := dns.NewZone()
	zone.PopulateSequential(n)
	h := dns.NewHandler(zone)
	tier := NewCrashableTier(nictier.NewDNS(zone))
	node := NewServerNode(sim, net, ServerAddr, h, cfg.BatchWindow)
	net.Attach(node)
	orch := daemon.NewOrchestrator(0)
	if _, err := orch.Register("dns", daemon.ServiceConfig{
		Service: nictier.NewService("dns", node, tier),
		Policy:  cfg.Policy,
	}); err != nil {
		panic(err)
	}
	return &DNSStack{
		Sim: sim, Net: net, Zone: zone, Handler: h, Tier: tier,
		Node: node, Orch: orch,
		StopTick: driveOrchestrator(sim, orch, cfg.tickEvery()),
	}
}

// --- Oracle ---------------------------------------------------------------

// Oracle is a fault-free replica of a stack's host handler: feed it the
// same request bytes and it produces the reply the host software would
// have sent — the byte-exactness reference for every serving property.
type Oracle struct {
	h       dataplane.Handler
	scratch []byte
	memo    map[uint16][]byte
}

// NewKVSOracle replicates a KVS stack preloaded with n entries.
func NewKVSOracle(n int) *Oracle {
	store := kvs.NewShardedStore(1, 1<<15)
	preloadKVS(store, n)
	return &Oracle{h: kvs.NewHandler(store), memo: make(map[uint16][]byte)}
}

// NewDNSOracle replicates a DNS stack populated with n names.
func NewDNSOracle(n int) *Oracle {
	zone := dns.NewZone()
	zone.PopulateSequential(n)
	return &Oracle{h: dns.NewHandler(zone), memo: make(map[uint16][]byte)}
}

// Reply returns the host software's answer to req (nil for no reply).
func (o *Oracle) Reply(req []byte) []byte {
	out, ok := o.h.HandleDatagram(req, &o.scratch)
	if !ok {
		return nil
	}
	return append([]byte(nil), out...)
}

// ReplyID memoizes Reply by request ID, so idempotent requests replayed
// by duplication faults are checked against one oracle evaluation.
func (o *Oracle) ReplyID(id uint16, req []byte) []byte {
	if out, ok := o.memo[id]; ok {
		return out
	}
	out := o.Reply(req)
	o.memo[id] = out
	return out
}

// --- Paxos ----------------------------------------------------------------

// PaxosAddrs names the fixed consensus topology.
var (
	LeaderAddr  = simnet.Addr("leader")
	LearnerAddr = simnet.Addr("learner")
)

// AcceptorAddr returns acceptor i's address ("server" for acceptor 0,
// which carries the offload tier and the orchestrator).
func AcceptorAddr(i int) simnet.Addr {
	if i == 0 {
		return ServerAddr
	}
	return simnet.Addr(fmt.Sprintf("acceptor-%d", i))
}

// netSender adapts the network to paxos.Sender for a node at from. Each
// message is freshly encoded, so deferred delivery never aliases a
// reused buffer.
func netSender(net *simnet.Network, from simnet.Addr) paxos.Sender {
	return func(to string, m paxos.Msg) {
		net.Send(&simnet.Packet{Src: from, Dst: simnet.Addr(to), Payload: paxos.Encode(m)})
	}
}

// voteKey identifies one acceptor's vote slot.
type voteKey struct {
	Node     uint16
	Instance uint64
}

// Vote is the (ballot, value) an acceptor committed to for an instance.
type Vote struct {
	VBallot uint32
	Value   []byte
}

// VoteAuditor observes every Phase2B fanned out to the learners — the
// host role and the offload tier share the acceptor's Sender, so
// wrapping it sees votes from both substrates. A second 2B for the same
// (acceptor, instance) with a different ballot or value is a doubled
// vote: the safety violation a botched state handoff would produce.
type VoteAuditor struct {
	votes     map[voteKey]Vote
	Conflicts []string
}

// NewVoteAuditor returns an empty auditor.
func NewVoteAuditor() *VoteAuditor {
	return &VoteAuditor{votes: make(map[voteKey]Vote)}
}

// Wrap interposes the auditor on send.
func (a *VoteAuditor) Wrap(send paxos.Sender) paxos.Sender {
	return func(to string, m paxos.Msg) {
		if m.Type == paxos.MsgPhase2B {
			a.record(m)
		}
		send(to, m)
	}
}

func (a *VoteAuditor) record(m paxos.Msg) {
	k := voteKey{m.NodeID, m.Instance}
	prev, seen := a.votes[k]
	if !seen {
		a.votes[k] = Vote{VBallot: m.VBallot, Value: append([]byte(nil), m.Value...)}
		return
	}
	if prev.VBallot != m.VBallot || !bytes.Equal(prev.Value, m.Value) {
		a.Conflicts = append(a.Conflicts, fmt.Sprintf(
			"acceptor %d instance %d voted (b%d %q) then (b%d %q)",
			k.Node, k.Instance, prev.VBallot, prev.Value, m.VBallot, m.Value))
	}
}

// Votes returns the recorded votes of one acceptor, keyed by instance.
func (a *VoteAuditor) Votes(node uint16) map[uint64]Vote {
	out := make(map[uint64]Vote)
	for k, v := range a.votes {
		if k.Node == node {
			out[k.Instance] = v
		}
	}
	return out
}

// PaxosClient proposes values and records learned decisions, flagging
// any sequence decided twice with different values.
type PaxosClient struct {
	ID        uint16
	addr      simnet.Addr
	net       *simnet.Network
	Decided   map[uint64][]byte
	Conflicts []string
}

// Addr implements simnet.Node.
func (c *PaxosClient) Addr() simnet.Addr { return c.addr }

// Receive implements simnet.Node, folding in decisions.
func (c *PaxosClient) Receive(pkt *simnet.Packet) {
	var v paxos.MsgView
	if paxos.DecodeView(pkt.Payload, &v) != nil || v.Type != paxos.MsgDecision {
		return
	}
	if prev, ok := c.Decided[v.Seq]; ok {
		if !bytes.Equal(prev, v.Value) {
			c.Conflicts = append(c.Conflicts, fmt.Sprintf(
				"client %d seq %d decided %q then %q", c.ID, v.Seq, prev, v.Value))
		}
		return
	}
	c.Decided[v.Seq] = append([]byte(nil), v.Value...)
}

// Propose submits value under seq to the leader.
func (c *PaxosClient) Propose(seq uint64, value []byte) {
	c.net.Send(&simnet.Packet{Src: c.addr, Dst: LeaderAddr, Payload: paxos.Encode(paxos.Msg{
		Type:       paxos.MsgClientRequest,
		ClientID:   c.ID,
		Seq:        seq,
		ClientAddr: c.addr,
		Value:      value,
	})})
}

// PaxosStack is a full consensus deployment on the simulated network:
// one leader, three acceptors (acceptor 0 carrying the P4xos offload
// tier and its orchestrator), one learner, and auditing of every vote.
type PaxosStack struct {
	Sim       *simnet.Simulator
	Net       *simnet.Network
	Leader    *paxos.LiveLeader
	Learner   *paxos.LiveLearner
	Acceptors [3]*paxos.LiveAcceptor
	Tier      *CrashableTier
	Node      *ServerNode // acceptor 0's serving node
	Orch      *daemon.Orchestrator
	Audit     *VoteAuditor
	Clients   []*PaxosClient
	stops     []func()
}

// NewPaxosStack wires the deployment up with nclients proposers.
// Acceptor 0 serves batched over cfg.BatchWindow; the other two are
// single-datagram hosts, so both dispatch substrates are always in play.
func NewPaxosStack(seed int64, cfg StackConfig, nclients int) *PaxosStack {
	sim := simnet.New(seed)
	net := simnet.NewNetwork(sim, cfg.Link)
	net.SetFaultPlan(cfg.Faults)
	attachTrace(net, cfg.Trace)
	s := &PaxosStack{Sim: sim, Net: net, Audit: NewVoteAuditor()}

	acceptorNames := make([]string, 3)
	for i := range acceptorNames {
		acceptorNames[i] = string(AcceptorAddr(i))
	}
	s.Leader = paxos.NewLiveLeader(1, acceptorNames, netSender(net, LeaderAddr))
	net.Attach(&simnet.NodeFunc{Address: LeaderAddr, Handler: serveHandler(net, LeaderAddr, s.Leader)})

	s.Learner = paxos.NewLiveLearner(2, string(LeaderAddr), netSender(net, LearnerAddr))
	net.Attach(&simnet.NodeFunc{Address: LearnerAddr, Handler: serveHandler(net, LearnerAddr, s.Learner)})

	for i := 0; i < 3; i++ {
		addr := AcceptorAddr(i)
		s.Acceptors[i] = paxos.NewLiveAcceptor(uint16(i), []string{string(LearnerAddr)},
			s.Audit.Wrap(netSender(net, addr)))
	}
	// Acceptor 0 is the managed service: offload tier + orchestrator.
	s.Tier = NewCrashableTier(nictier.NewPaxosAcceptor(s.Acceptors[0]))
	s.Node = NewServerNode(sim, net, ServerAddr, s.Acceptors[0], cfg.BatchWindow)
	net.Attach(s.Node)
	for i := 1; i < 3; i++ {
		net.Attach(&simnet.NodeFunc{Address: AcceptorAddr(i),
			Handler: serveHandler(net, AcceptorAddr(i), s.Acceptors[i])})
	}

	s.Orch = daemon.NewOrchestrator(0)
	if _, err := s.Orch.Register("paxos", daemon.ServiceConfig{
		Service: nictier.NewService("paxos", s.Node, s.Tier),
		Policy:  cfg.Policy,
	}); err != nil {
		panic(err)
	}
	s.stops = append(s.stops, driveOrchestrator(sim, s.Orch, cfg.tickEvery()))
	// §9.2 gap recovery on the virtual clock.
	s.stops = append(s.stops, sim.Every(500*time.Microsecond, s.Learner.ScanGaps))

	for c := 0; c < nclients; c++ {
		cl := &PaxosClient{
			ID:      uint16(c + 1),
			addr:    simnet.Addr(fmt.Sprintf("client-%d", c)),
			net:     net,
			Decided: make(map[uint64][]byte),
		}
		net.Attach(cl)
		s.Clients = append(s.Clients, cl)
	}
	return s
}

// RunAndDrain advances the stack d of virtual time, then stops the
// periodic drivers and drains in-flight packets.
func (s *PaxosStack) RunAndDrain(d time.Duration) {
	runAndDrain(s.Sim, d, s.stops...)
	s.stops = nil
}

// serveHandler adapts a dataplane.Handler into a NodeFunc body that
// replies to the packet source — the single-datagram serving loop for
// the unmanaged consensus roles.
func serveHandler(net *simnet.Network, addr simnet.Addr, h dataplane.Handler) func(*simnet.Packet) {
	var scratch []byte
	return func(pkt *simnet.Packet) {
		if out, ok := h.HandleDatagram(pkt.Payload, &scratch); ok && len(out) > 0 {
			net.Send(&simnet.Packet{Src: addr, Dst: pkt.Src,
				Payload: append([]byte(nil), out...)})
		}
	}
}
