package chaos

import (
	"fmt"
	"io"
	"time"
)

// Config tunes a property run.
type Config struct {
	// Quick shrinks the per-seed workloads (CI sweeps thousands of seeds;
	// a single replay can afford the full size).
	Quick bool
	// Trace, when set, receives the packet-level event log of the run.
	Trace io.Writer
}

// Property is one standing invariant the harness sweeps. Run executes a
// full deterministic chaos run for (seed, property): the returned hash is
// the network's order-sensitive trace hash (0 for network-free
// properties), identical across runs of the same seed; err reports a
// violation.
type Property struct {
	Name string
	Doc  string
	run  func(seed int64, cfg Config) (uint64, error)
}

// Run executes the property once for seed.
func (p Property) Run(seed int64, cfg Config) (uint64, error) {
	return p.run(seed, cfg)
}

// Properties returns the five standing invariants, in sweep order.
func Properties() []Property {
	return []Property{
		{
			Name: "paxos-vote-safety",
			Doc:  "no acceptor vote lost or doubled across shifts, incl. crash between stage and flip",
			run:  runPaxosVoteSafety,
		},
		{
			Name: "batch-equivalence",
			Doc:  "batched serving answers byte-identically to the single-datagram path (KVS + DNS)",
			run:  runBatchEquivalence,
		},
		{
			Name: "migration-correctness",
			Doc:  "zero wrong answers from KVS/DNS while migrating under loss and duplication",
			run:  runMigrationCorrectness,
		},
		{
			Name: "controller-no-flap",
			Doc:  "threshold policy and budget scheduler hold placement under adversarial load",
			run:  runControllerNoFlap,
		},
		{
			Name: "crash-failback",
			Doc:  "crashed NIC tier falls through correctly and fails back within bounded ticks",
			run:  runCrashFailback,
		},
	}
}

// PropertyByName returns the named property.
func PropertyByName(name string) (Property, error) {
	for _, p := range Properties() {
		if p.Name == name {
			return p, nil
		}
	}
	return Property{}, fmt.Errorf("chaos: unknown property %q", name)
}

// Violation is one failed (property, seed) pair.
type Violation struct {
	Prop string
	Seed int64
	Err  error
}

// ReproCommand is the command line that replays this violation.
func (v Violation) ReproCommand() string {
	return fmt.Sprintf("go run ./cmd/incchaos -prop %s -seed %d", v.Prop, v.Seed)
}

// Report summarizes a sweep.
type Report struct {
	Runs       int
	Seeds      int
	Violations []Violation
	Elapsed    time.Duration
}

// OK reports a clean sweep.
func (r Report) OK() bool { return len(r.Violations) == 0 }

// Sweep runs every property over seeds consecutive seeds (0..seeds-1),
// collecting violations instead of stopping — one bad seed must not
// mask another property's failure. progress (optional) is called after
// each completed run.
func Sweep(props []Property, seeds int, cfg Config, progress func(done, total int)) Report {
	start := time.Now()
	r := Report{Seeds: seeds}
	total := seeds * len(props)
	for seed := int64(0); seed < int64(seeds); seed++ {
		for _, p := range props {
			if _, err := p.Run(seed, cfg); err != nil {
				r.Violations = append(r.Violations, Violation{Prop: p.Name, Seed: seed, Err: err})
			}
			r.Runs++
			if progress != nil {
				progress(r.Runs, total)
			}
		}
	}
	r.Elapsed = time.Since(start)
	return r
}
