package chaos

import "testing"

// BenchmarkProps times one quick run of each property — the sweep's
// per-seed cost budget. The 1000-seed CI bar needs the per-seed total
// across all five to stay in the low tens of milliseconds.
func BenchmarkProps(b *testing.B) {
	for _, p := range Properties() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(int64(i), Config{Quick: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
