// Package chaos is the deterministic whole-stack chaos harness: it runs
// the repository's *live* serving code — the kvs/dns/paxos dataplane
// handlers, the nictier offload tiers with their real Stage/Warm/Park
// shift lifecycle, and the daemon orchestrator — on the internal/simnet
// substrate instead of UDP sockets, under seeded fault injection.
//
// # Architecture
//
// ServerNode is the bridge: a simnet.Node that reproduces the dataplane
// engine's dispatch contract (fast-path interposition before the host
// handler, optional delivery batching with a flush window) and implements
// nictier.Dataplane, so an unmodified nictier.Service shifts placement on
// it exactly as it does on a real engine. CrashableTier wraps any
// nictier.Tier with schedulable failure: a crash armed at Stage makes the
// following Warm fail before any state leaves the host (the §9.2
// transition task dying mid-shift), and a crash while lit makes the fast
// path fall through so every datagram lands on the host software.
//
// Faults come from simnet's FaultPlan — per-link loss, duplication,
// bounded reordering, jitter, stragglers, plus partitions and node
// crash/restart — all drawn from the simulator's seeded RNG. Everything
// in a run is therefore a pure function of (seed, property): any failure
// replays byte-for-byte from the seed printed with the violation.
//
// # Properties
//
// Properties() returns the five standing invariants, each a self-contained
// run asserting against an in-process oracle:
//
//   - paxos-vote-safety: no acceptor vote is lost or doubled across
//     placement shifts, including a tier crash between stage and flip.
//   - batch-equivalence: batched serving answers byte-identically to the
//     single-datagram path, for KVS and DNS, host and tier alike.
//   - migration-correctness: zero wrong answers from KVS/DNS while the
//     service migrates under loss and duplication.
//   - controller-no-flap: the threshold policy and the fleet budget
//     scheduler hold placement under adversarial oscillating load.
//   - crash-failback: a crashed NIC tier keeps serving correctly through
//     host fall-through and is failed back to software within a bounded
//     number of virtual ticks.
//
// # Replaying a violation
//
// Sweep prints (and cmd/incchaos re-prints) the violating (property,
// seed). Re-running that single pair reproduces the identical execution:
//
//	go run ./cmd/incchaos -prop paxos-vote-safety -seed 1337
//
// Add -trace to dump every packet event of the replay.
package chaos
