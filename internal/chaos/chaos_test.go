package chaos

import (
	"fmt"
	"io"
	"log"
	"net/netip"
	"os"
	"strings"
	"testing"

	"incod/internal/telemetry"
)

func TestMain(m *testing.M) {
	// Placement shifts log through the daemon's logger; a sweep makes
	// thousands of them.
	log.SetOutput(io.Discard)
	os.Exit(m.Run())
}

// TestPropertiesQuickSweep runs every property over a band of seeds —
// the in-tree slice of the CI sweep.
func TestPropertiesQuickSweep(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 8
	}
	rep := Sweep(Properties(), seeds, Config{Quick: true}, nil)
	for _, v := range rep.Violations {
		t.Errorf("%s seed=%d: %v (repro: %s)", v.Prop, v.Seed, v.Err, v.ReproCommand())
	}
	if rep.Runs != seeds*len(Properties()) {
		t.Errorf("Runs = %d, want %d", rep.Runs, seeds*len(Properties()))
	}
}

// TestSameSeedSameTrace is the replay guarantee: identical (seed,
// property) pairs produce identical order-sensitive trace hashes.
func TestSameSeedSameTrace(t *testing.T) {
	for _, p := range Properties() {
		if p.Name == "controller-no-flap" {
			continue // network-free, hash is defined as 0
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			h1, err1 := p.Run(7, Config{Quick: true})
			h2, err2 := p.Run(7, Config{Quick: true})
			if err1 != nil || err2 != nil {
				t.Fatalf("runs errored: %v, %v", err1, err2)
			}
			if h1 != h2 {
				t.Fatalf("same seed diverged: %016x vs %016x", h1, h2)
			}
			if h1 == 0 {
				t.Fatal("trace hash 0: no packet events folded in")
			}
		})
	}
}

// TestDifferentSeedsDifferentTrace guards against a run that ignores its
// seed entirely.
func TestDifferentSeedsDifferentTrace(t *testing.T) {
	p, err := PropertyByName("batch-equivalence")
	if err != nil {
		t.Fatal(err)
	}
	h1, err1 := p.Run(1, Config{Quick: true})
	h2, err2 := p.Run(2, Config{Quick: true})
	if err1 != nil || err2 != nil {
		t.Fatalf("runs errored: %v, %v", err1, err2)
	}
	if h1 == h2 {
		t.Fatalf("seeds 1 and 2 produced the same trace hash %016x", h1)
	}
}

// TestTraceWriterSeesPackets exercises the replay artifact path.
func TestTraceWriterSeesPackets(t *testing.T) {
	var b strings.Builder
	p, err := PropertyByName("crash-failback")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(3, Config{Quick: true, Trace: &b}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, kind := range []string{"send", "deliver"} {
		if !strings.Contains(out, kind) {
			t.Errorf("trace missing %q events", kind)
		}
	}
}

// TestPropertyByNameUnknown covers the runner's flag validation path.
func TestPropertyByNameUnknown(t *testing.T) {
	if _, err := PropertyByName("nope"); err == nil {
		t.Fatal("unknown property must error")
	}
	for _, p := range Properties() {
		got, err := PropertyByName(p.Name)
		if err != nil || got.Name != p.Name {
			t.Fatalf("PropertyByName(%q) = %v, %v", p.Name, got.Name, err)
		}
	}
}

// TestCrashableTierLifecycle pins the wrapper's contract: a stage-crash
// fails Warm before the inner tier runs, a crashed fast path falls
// through, Park always reaches the inner tier.
func TestCrashableTierLifecycle(t *testing.T) {
	inner := &fakeTier{}
	ct := NewCrashableTier(inner)

	ct.ArmStageCrash()
	if err := ct.Stage(); err != nil {
		t.Fatalf("armed Stage must succeed: %v", err)
	}
	if !ct.Crashed() {
		t.Fatal("stage-crash did not fire")
	}
	if err := ct.Warm(); err == nil {
		t.Fatal("Warm on a crashed card must fail")
	}
	if inner.warms != 0 {
		t.Fatal("crashed Warm must not reach the inner tier")
	}
	if _, served, _ := ct.TryHandleDatagram([]byte("x"), netip.AddrPort{}, new([]byte)); served {
		t.Fatal("crashed fast path must fall through")
	}
	if err := ct.Park(); err != nil || inner.parks != 1 {
		t.Fatalf("Park must reach the inner tier: err=%v parks=%d", err, inner.parks)
	}
	if err := ct.Stage(); err == nil {
		t.Fatal("Stage on a still-crashed card must fail")
	}
	ct.Restart()
	if err := ct.Stage(); err != nil || inner.stages != 2 {
		t.Fatalf("restarted Stage: err=%v stages=%d", err, inner.stages)
	}
	if err := ct.Warm(); err != nil || inner.warms != 1 {
		t.Fatalf("restarted Warm: err=%v warms=%d", err, inner.warms)
	}
	if ct.Crashes() != 1 {
		t.Fatalf("Crashes() = %d, want 1", ct.Crashes())
	}
}

// fakeTier counts lifecycle calls; its fast path serves everything.
type fakeTier struct {
	stages, warms, parks int
	counters             *telemetry.AtomicCounters
}

func (f *fakeTier) Name() string { return "fake" }
func (f *fakeTier) Stage() error { f.stages++; return nil }
func (f *fakeTier) Warm() error  { f.warms++; return nil }
func (f *fakeTier) Park() error  { f.parks++; return nil }
func (f *fakeTier) Counters() *telemetry.AtomicCounters {
	if f.counters == nil {
		f.counters = telemetry.NewAtomicCounters()
	}
	return f.counters
}
func (f *fakeTier) HitRatio() float64   { return 0 }
func (f *fakeTier) PowerWatts() float64 { return 0 }
func (f *fakeTier) TryHandleDatagram(in []byte, _ netip.AddrPort, _ *[]byte) ([]byte, bool, bool) {
	return in, true, true
}

// TestViolationRepro keeps the printed repro command in sync with the
// actual incchaos flags.
func TestViolationRepro(t *testing.T) {
	v := Violation{Prop: "paxos-vote-safety", Seed: 42, Err: fmt.Errorf("boom")}
	want := "go run ./cmd/incchaos -prop paxos-vote-safety -seed 42"
	if got := v.ReproCommand(); got != want {
		t.Fatalf("ReproCommand() = %q, want %q", got, want)
	}
}
