package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync/atomic"
	"time"

	"incod/internal/daemon"
	"incod/internal/dataplane"
)

// Retry policy for one logical call: a transient failure (transport error
// or 5xx) is retried with capped exponential backoff and full jitter; a
// 4xx is the daemon telling us the request itself is wrong and fails
// fast. Every attempt gets its own bounded sub-context, so one wedged
// member costs at most attempts×timeout, never the whole fleet tick.
const (
	retryAttempts  = 4
	retryBase      = 50 * time.Millisecond
	retryCap       = time.Second
	attemptTimeout = 2 * time.Second
)

// Client speaks one daemon's /v1 control API — the fleet-side counterpart
// of daemon.Orchestrator's Handler. All methods take a context so an
// aggressive polling loop can bound a slow member instead of wedging the
// fleet tick.
type Client struct {
	base string // "http://host:port"
	http *http.Client

	// retries counts extra attempts spent on transient failures over the
	// client's lifetime (0 on an all-first-try history).
	retries atomic.Uint64
}

// NewClient returns a client for the control API at hostport (no scheme).
func NewClient(hostport string) *Client {
	// No global http.Client timeout: deadlines are per attempt, derived
	// from the caller's context (or attemptTimeout when it has none), so
	// a retried call is never starved by time the first attempt burned.
	return &Client{base: "http://" + hostport, http: &http.Client{}}
}

// Base returns the client's base URL.
func (c *Client) Base() string { return c.base }

// Retries reports lifetime retry attempts spent on transient failures.
func (c *Client) Retries() uint64 { return c.retries.Load() }

// do runs one logical call through the retry policy. body is re-read per
// attempt, so a request interrupted mid-send retries cleanly.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			if !sleepCtx(ctx, retryDelay(attempt)) {
				return lastErr
			}
		}
		err, transient := c.attempt(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !transient || ctx.Err() != nil {
			return err
		}
	}
	return lastErr
}

// attempt performs a single HTTP round trip. The second return reports
// whether the failure is transient (worth retrying).
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any) (error, bool) {
	actx := ctx
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, attemptTimeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return err, false
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		// Connection refused, reset, timeout: the member may be mid-restart.
		return err, true
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(path, resp), resp.StatusCode >= 500
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, false
	}
	return json.NewDecoder(resp.Body).Decode(out), false
}

// retryDelay is capped exponential backoff with full jitter: a uniform
// draw over (0, base·2^(attempt-1)] capped at retryCap, so a fleet of
// clients retrying against one recovering daemon doesn't thunder in step.
func retryDelay(attempt int) time.Duration {
	d := retryBase << (attempt - 1)
	if d > retryCap {
		d = retryCap
	}
	return time.Duration(rand.Int63n(int64(d))) + 1
}

// sleepCtx sleeps for d, reporting false if ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	return c.do(ctx, http.MethodGet, path, nil, out)
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, path, body, out)
}

// apiError surfaces the server's JSON {"error": ...} payload when present.
func apiError(path string, resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s (HTTP %d)", path, e.Error, resp.StatusCode)
	}
	return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
}

// Healthy reports whether GET /v1/healthz answers 200 — i.e. the daemon's
// dataplane is serving. Transport errors and 503 both read as not ready.
// A probe is a point-in-time question, so it deliberately does not retry;
// callers like WaitHealthy poll it on their own schedule.
func (c *Client) Healthy(ctx context.Context) bool {
	actx := ctx
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, attemptTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(actx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// Services lists every managed service on the daemon.
func (c *Client) Services(ctx context.Context) ([]daemon.ServiceStatus, error) {
	var out []daemon.ServiceStatus
	err := c.get(ctx, "/v1/services", &out)
	return out, err
}

// Service snapshots one service's status.
func (c *Client) Service(ctx context.Context, name string) (daemon.ServiceStatus, error) {
	var out daemon.ServiceStatus
	err := c.get(ctx, "/v1/services/"+name, &out)
	return out, err
}

// Dataplane snapshots the serving engine attached to name.
func (c *Client) Dataplane(ctx context.Context, name string) (dataplane.Stats, error) {
	var out dataplane.Stats
	err := c.get(ctx, "/v1/services/"+name+"/dataplane", &out)
	return out, err
}

// Pin pins name's placement ("host" | "network" | "auto") and returns the
// resulting status. This is how the fleet budget overrides each daemon's
// local policy.
func (c *Client) Pin(ctx context.Context, name, placement string) (daemon.ServiceStatus, error) {
	var out daemon.ServiceStatus
	err := c.post(ctx, "/v1/services/"+name+"/placement",
		map[string]string{"placement": placement}, &out)
	return out, err
}

// SetThresholds updates name's mirrored rate pair.
func (c *Client) SetThresholds(ctx context.Context, name string, t daemon.Thresholds) (daemon.Thresholds, error) {
	var out daemon.Thresholds
	err := c.post(ctx, "/v1/services/"+name+"/thresholds", t, &out)
	return out, err
}
