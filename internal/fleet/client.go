package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"incod/internal/daemon"
	"incod/internal/dataplane"
)

// Client speaks one daemon's /v1 control API — the fleet-side counterpart
// of daemon.Orchestrator's Handler. All methods take a context so an
// aggressive polling loop can bound a slow member instead of wedging the
// fleet tick.
type Client struct {
	base string // "http://host:port"
	http *http.Client
}

// NewClient returns a client for the control API at hostport (no scheme).
func NewClient(hostport string) *Client {
	return &Client{
		base: "http://" + hostport,
		http: &http.Client{Timeout: 5 * time.Second},
	}
}

// Base returns the client's base URL.
func (c *Client) Base() string { return c.base }

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(path, resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(path, resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// apiError surfaces the server's JSON {"error": ...} payload when present.
func apiError(path string, resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s (HTTP %d)", path, e.Error, resp.StatusCode)
	}
	return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
}

// Healthy reports whether GET /v1/healthz answers 200 — i.e. the daemon's
// dataplane is serving. Transport errors and 503 both read as not ready.
func (c *Client) Healthy(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// Services lists every managed service on the daemon.
func (c *Client) Services(ctx context.Context) ([]daemon.ServiceStatus, error) {
	var out []daemon.ServiceStatus
	err := c.get(ctx, "/v1/services", &out)
	return out, err
}

// Service snapshots one service's status.
func (c *Client) Service(ctx context.Context, name string) (daemon.ServiceStatus, error) {
	var out daemon.ServiceStatus
	err := c.get(ctx, "/v1/services/"+name, &out)
	return out, err
}

// Dataplane snapshots the serving engine attached to name.
func (c *Client) Dataplane(ctx context.Context, name string) (dataplane.Stats, error) {
	var out dataplane.Stats
	err := c.get(ctx, "/v1/services/"+name+"/dataplane", &out)
	return out, err
}

// Pin pins name's placement ("host" | "network" | "auto") and returns the
// resulting status. This is how the fleet budget overrides each daemon's
// local policy.
func (c *Client) Pin(ctx context.Context, name, placement string) (daemon.ServiceStatus, error) {
	var out daemon.ServiceStatus
	err := c.post(ctx, "/v1/services/"+name+"/placement",
		map[string]string{"placement": placement}, &out)
	return out, err
}

// SetThresholds updates name's mirrored rate pair.
func (c *Client) SetThresholds(ctx context.Context, name string, t daemon.Thresholds) (daemon.Thresholds, error) {
	var out daemon.Thresholds
	err := c.post(ctx, "/v1/services/"+name+"/thresholds", t, &out)
	return out, err
}
