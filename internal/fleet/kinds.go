package fleet

import (
	"fmt"

	"incod/internal/fpga"
	"incod/internal/power"
)

// KindSpec is the fleet's model of one daemon flavor: which §4 software
// power curve its host serving follows, what its offload tier draws, and
// what hit ratio to expect from a tier that has not yet served (once a
// member's tier has real measurements, those win).
type KindSpec struct {
	// Kind is the flavor name: "kvs", "dns" or "paxos".
	Kind string
	// Service is the daemon's registered service name on /v1.
	Service string
	// Binary is the daemon executable that serves this kind.
	Binary string
	// Proto is the incloadgen protocol generating this kind's traffic.
	Proto string
	// Curve is the §4 software power curve of the host implementation.
	Curve power.SoftwareCurve
	// TierActiveWatts is the modeled in-server draw of the lit tier,
	// used to rank dark candidates before their tier reports real power.
	TierActiveWatts float64
	// TierParkedWatts is the extra draw, over the software-only server's
	// own NIC, of the parked card an on-demand server carries while
	// serving from the host. The §9.2 partial-reconfiguration strategy
	// parks the card as the reference NIC the §4 idle figure already
	// includes, so the built-in kinds charge zero — matching the
	// simulated min(sw, hw) on-demand envelope in internal/cluster.
	TierParkedWatts float64
	// PredictedHitRatio estimates the tier hit ratio for a member whose
	// tier has never served (no measured ratio yet).
	PredictedHitRatio float64
}

// KindSpecs returns the three built-in daemon flavors, with tier draws
// derived from the §5 fpga board models rather than fresh constants.
func KindSpecs() map[string]KindSpec {
	lake := fpga.NewBoard(fpga.LaKeDesign)
	p4 := fpga.NewBoard(fpga.P4xosDesign)
	emu := fpga.NewBoard(fpga.EmuDNSDesign)
	return map[string]KindSpec{
		"kvs": {
			Kind:    "kvs",
			Service: "kvs",
			Binary:  "inckvsd",
			Proto:   "kvs",
			Curve:   power.MemcachedMellanox,
			// LaKe's cache keeps hot keys on the card; a Zipf workload
			// lands most GETs there.
			TierActiveWatts:   lake.CardWatts(0.5),
			TierParkedWatts:   0,
			PredictedHitRatio: 0.9,
		},
		"dns": {
			Kind:    "dns",
			Service: "dns",
			Binary:  "incdnsd",
			Proto:   "dns",
			Curve:   power.NSDServer,
			// Emu DNS holds the whole zone; only out-of-zone queries fall
			// through.
			TierActiveWatts:   emu.CardWatts(0.5),
			TierParkedWatts:   0,
			PredictedHitRatio: 0.95,
		},
		"paxos": {
			Kind:    "paxos",
			Service: "paxos",
			Binary:  "incpaxosd",
			Proto:   "paxos",
			Curve:   power.LibpaxosAcceptor,
			// P4xos acceptors handle every classified consensus message.
			TierActiveWatts:   p4.CardWatts(0.5),
			TierParkedWatts:   0,
			PredictedHitRatio: 1.0,
		},
	}
}

// LookupKind resolves a flavor name against KindSpecs.
func LookupKind(kind string) (KindSpec, error) {
	spec, ok := KindSpecs()[kind]
	if !ok {
		return KindSpec{}, fmt.Errorf("fleet: unknown member kind %q (want kvs, dns or paxos)", kind)
	}
	return spec, nil
}
