package fleet

import (
	"strings"
	"testing"
	"time"

	"incod/internal/cluster"
)

func TestProfileStringRampsAndScale(t *testing.T) {
	trace := cluster.LoadTrace{10, 20, 30} // modeled kpps
	got := ProfileString(trace, 10*time.Second, 2, 10)
	want := "ramp:1000-2000:5s,ramp:2000-3000:5s"
	if got != want {
		t.Fatalf("profile = %q, want %q", got, want)
	}
}

func TestProfileStringResamplesLongTraces(t *testing.T) {
	day := cluster.DiurnalLoad(30, 300)
	got := ProfileString(day, 30*time.Second, 6, 20)
	phases := strings.Split(got, ",")
	if len(phases) != 6 {
		t.Fatalf("%d phases, want 6: %q", len(phases), got)
	}
	for _, p := range phases {
		if !strings.HasPrefix(p, "ramp:") || !strings.HasSuffix(p, ":5s") {
			t.Fatalf("bad phase %q in %q", p, got)
		}
	}
}

func TestProfileStringDegenerate(t *testing.T) {
	if got := ProfileString(nil, time.Second, 4, 1); got != "" {
		t.Fatalf("empty trace -> %q, want empty", got)
	}
	// A single sample becomes one flat ramp.
	got := ProfileString(cluster.LoadTrace{5}, 2*time.Second, 4, 1)
	if got != "ramp:5000-5000:2s" {
		t.Fatalf("single sample -> %q", got)
	}
}

func TestBuildReportTotalsAndDayExtrapolation(t *testing.T) {
	snap := Snapshot{
		Members: 2, K: 1, MaxLit: 1,
		Energy: EnergyTotals{
			ModeledSeconds:  43200, // half a day replayed
			SoftwareOnlyKWh: 2.0,
			OnDemandKWh:     1.5,
			SavedKWh:        0.5,
			SavedPct:        25,
		},
	}
	workers := []WorkerResult{
		{Member: "a", Report: &LoadReport{Sent: 100, Answered: 99, Bad: 1}},
		{Member: "b", Report: &LoadReport{Sent: 50, Answered: 50}},
		{Member: "c"}, // died before reporting
	}
	r := BuildReport(snap, nil, workers)
	if r.SentTotal != 150 || r.AnsweredTotal != 149 || r.WrongAnswers != 1 {
		t.Fatalf("totals: %+v", r)
	}
	// Half a day of 0.5 kWh saved extrapolates to 1 kWh/day.
	if r.SavedKWhDay != 1.0 || r.SoftwareOnlyKWhDay != 4.0 || r.OnDemandKWhDay != 3.0 {
		t.Fatalf("day extrapolation: %+v", r)
	}
}

func TestReportCheck(t *testing.T) {
	good := Report{
		K: 2,
		Snapshot: Snapshot{
			K: 2, MaxLit: 2, BudgetViolations: 0, ConcurrentShiftsMax: 1,
		},
		SentTotal: 1000, AnsweredTotal: 990,
		SavedKWhDay: 0.5, SoftwareOnlyKWhDay: 4, OnDemandKWhDay: 3.5,
	}
	if err := good.Check(); err != nil {
		t.Fatalf("clean run failed check: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Report)
		want   string
	}{
		{"budget violated", func(r *Report) { r.Snapshot.BudgetViolations = 3 }, "budget violated"},
		{"budget under-used", func(r *Report) { r.Snapshot.MaxLit = 1 }, "under-used"},
		{"overlapping shifts", func(r *Report) { r.Snapshot.ConcurrentShiftsMax = 2 }, "not staggered"},
		{"wrong answers", func(r *Report) { r.WrongAnswers = 7 }, "wrong answers"},
		{"no traffic", func(r *Report) { r.AnsweredTotal = 0 }, "no traffic"},
		{"no saving", func(r *Report) { r.SavedKWhDay = -0.1 }, "no energy saved"},
	}
	for _, tc := range cases {
		r := good
		tc.mutate(&r)
		err := r.Check()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Check = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}
