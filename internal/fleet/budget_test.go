package fleet

import "testing"

func plan(t *testing.T, s *Scheduler, cands []Candidate) (Action, bool) {
	t.Helper()
	return s.Plan(cands)
}

// planUntil ticks the same candidate set until an action fires or limit
// ticks pass.
func planUntil(t *testing.T, s *Scheduler, cands []Candidate, limit int) (Action, bool) {
	t.Helper()
	for i := 0; i < limit; i++ {
		if a, ok := s.Plan(cands); ok {
			return a, true
		}
	}
	return Action{}, false
}

func TestSchedulerHoldDelaysAction(t *testing.T) {
	s := NewScheduler(SchedulerConfig{K: 1, Hold: 3, LightMarginW: 1})
	cands := []Candidate{{Name: "a", SavingW: 10}}
	for i := 0; i < 2; i++ {
		if _, ok := plan(t, s, cands); ok {
			t.Fatalf("action on tick %d, want held for 3", i+1)
		}
	}
	a, ok := plan(t, s, cands)
	if !ok || a.Kind != Light || a.Member != "a" {
		t.Fatalf("tick 3 = %+v %v, want light a", a, ok)
	}
}

func TestSchedulerChangedVerdictResetsHold(t *testing.T) {
	s := NewScheduler(SchedulerConfig{K: 1, Hold: 2, LightMarginW: 1})
	plan(t, s, []Candidate{{Name: "a", SavingW: 10}})
	// The front-runner changes: the streak must restart, not carry over.
	if _, ok := plan(t, s, []Candidate{{Name: "b", SavingW: 20}}); ok {
		t.Fatal("verdict changed but action still fired")
	}
	a, ok := plan(t, s, []Candidate{{Name: "b", SavingW: 20}})
	if !ok || a.Member != "b" {
		t.Fatalf("got %+v %v, want light b after fresh hold", a, ok)
	}
}

func TestSchedulerNeverLightsBeyondBudget(t *testing.T) {
	s := NewScheduler(SchedulerConfig{K: 2, Hold: 1, LightMarginW: 1})
	cands := []Candidate{
		{Name: "a", Lit: true, SavingW: 10},
		{Name: "b", Lit: true, SavingW: 9},
		{Name: "c", SavingW: 8},
	}
	if a, ok := plan(t, s, cands); ok {
		t.Fatalf("budget full but planned %+v", a)
	}
}

func TestSchedulerNoActionWhileAnyShifting(t *testing.T) {
	s := NewScheduler(SchedulerConfig{K: 2, Hold: 1, LightMarginW: 1})
	cands := []Candidate{
		{Name: "a", SavingW: 50},
		{Name: "b", Shifting: true, SavingW: 2},
	}
	if a, ok := plan(t, s, cands); ok {
		t.Fatalf("member shifting but planned %+v", a)
	}
}

func TestSchedulerDousesOverBudget(t *testing.T) {
	// K lowered (or an adopted fleet came up lit): the worst lit member
	// goes dark first.
	s := NewScheduler(SchedulerConfig{K: 1, Hold: 1})
	cands := []Candidate{
		{Name: "a", Lit: true, SavingW: 10},
		{Name: "b", Lit: true, SavingW: 4},
	}
	a, ok := plan(t, s, cands)
	if !ok || a.Kind != Douse || a.Member != "b" {
		t.Fatalf("got %+v %v, want douse b", a, ok)
	}
}

func TestSchedulerDousesUnprofitable(t *testing.T) {
	s := NewScheduler(SchedulerConfig{K: 2, Hold: 1, LightMarginW: 1, DouseMarginW: 0.5})
	cands := []Candidate{{Name: "a", Lit: true, SavingW: -3}}
	a, ok := plan(t, s, cands)
	if !ok || a.Kind != Douse || a.Member != "a" {
		t.Fatalf("got %+v %v, want douse a", a, ok)
	}
}

func TestSchedulerHysteresisBand(t *testing.T) {
	// Saving between the douse and light margins must move nothing in
	// either direction — that band is what stops flapping.
	s := NewScheduler(SchedulerConfig{K: 1, Hold: 1, LightMarginW: 2, DouseMarginW: 0.5})
	if a, ok := plan(t, s, []Candidate{{Name: "a", SavingW: 1}}); ok {
		t.Fatalf("dark member inside band lit: %+v", a)
	}
	if a, ok := plan(t, s, []Candidate{{Name: "a", Lit: true, SavingW: 1}}); ok {
		t.Fatalf("lit member inside band doused: %+v", a)
	}
}

func TestSchedulerSwapDousesFirstThenLights(t *testing.T) {
	s := NewScheduler(SchedulerConfig{K: 1, Hold: 1, LightMarginW: 1, SwapMarginW: 2})
	cands := []Candidate{
		{Name: "weak", Lit: true, SavingW: 3},
		{Name: "strong", SavingW: 10},
	}
	a, ok := plan(t, s, cands)
	if !ok || a.Kind != Douse || a.Member != "weak" {
		t.Fatalf("swap step 1 = %+v %v, want douse weak", a, ok)
	}
	// After the douse lands, the challenger lights on a later tick — the
	// lit count never passes through K+1.
	cands = []Candidate{
		{Name: "weak", SavingW: 3},
		{Name: "strong", SavingW: 10},
	}
	a, ok = plan(t, s, cands)
	if !ok || a.Kind != Light || a.Member != "strong" {
		t.Fatalf("swap step 2 = %+v %v, want light strong", a, ok)
	}
}

func TestSchedulerSwapNeedsMargin(t *testing.T) {
	s := NewScheduler(SchedulerConfig{K: 1, Hold: 1, LightMarginW: 1, SwapMarginW: 5})
	cands := []Candidate{
		{Name: "weak", Lit: true, SavingW: 3},
		{Name: "strong", SavingW: 6}, // better, but not by SwapMarginW
	}
	if a, ok := plan(t, s, cands); ok {
		t.Fatalf("marginal challenger swapped: %+v", a)
	}
}

func TestSchedulerDeterministicTieBreak(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		s := NewScheduler(SchedulerConfig{K: 1, Hold: 1, LightMarginW: 1})
		cands := []Candidate{
			{Name: "zeta", SavingW: 7},
			{Name: "alpha", SavingW: 7},
		}
		a, ok := plan(t, s, cands)
		if !ok || a.Member != "alpha" {
			t.Fatalf("trial %d: got %+v %v, want alpha by name order", trial, a, ok)
		}
	}
}

func TestSchedulerConvergesToKAndStops(t *testing.T) {
	// Drive a 6-member fleet to steady state, applying each action to
	// the candidate set, and verify: lit never exceeds K, and once the
	// best K are lit the scheduler goes quiet.
	s := NewScheduler(SchedulerConfig{K: 2, Hold: 2, LightMarginW: 1, DouseMarginW: 0.25, SwapMarginW: 2})
	cands := []Candidate{
		{Name: "a", SavingW: 9},
		{Name: "b", SavingW: 7},
		{Name: "c", SavingW: 5},
		{Name: "d", SavingW: 3},
		{Name: "e", SavingW: -2},
		{Name: "f", SavingW: 0.5},
	}
	actions := 0
	for tick := 0; tick < 50; tick++ {
		a, ok := s.Plan(cands)
		if !ok {
			continue
		}
		actions++
		lit := 0
		for i := range cands {
			if cands[i].Name == a.Member {
				cands[i].Lit = a.Kind == Light
			}
			if cands[i].Lit {
				lit++
			}
		}
		if lit > 2 {
			t.Fatalf("budget violated after %+v: %d lit", a, lit)
		}
	}
	var litNames []string
	for _, c := range cands {
		if c.Lit {
			litNames = append(litNames, c.Name)
		}
	}
	if len(litNames) != 2 || litNames[0] != "a" || litNames[1] != "b" {
		t.Fatalf("steady state lit %v, want [a b]", litNames)
	}
	if actions != 2 {
		t.Fatalf("%d actions to converge, want exactly 2 (no flapping)", actions)
	}
	// Steady state stays steady.
	if a, ok := planUntil(t, s, cands, 10); ok {
		t.Fatalf("steady fleet still planned %+v", a)
	}
}
