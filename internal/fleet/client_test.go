package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"incod/internal/core"
	"incod/internal/daemon"
)

// newDaemon stands up a real orchestrator with one threshold-policy
// service behind its real /v1 handler, returning the fleet-side client.
func newDaemon(t *testing.T, service string) (*daemon.Orchestrator, *Client) {
	t.Helper()
	o := daemon.NewOrchestrator(0)
	if _, err := o.Register(service, daemon.ServiceConfig{
		Policy: core.NewThresholdPolicy(core.DefaultNetworkConfig(100)),
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(o.Handler())
	t.Cleanup(srv.Close)
	return o, NewClient(strings.TrimPrefix(srv.URL, "http://"))
}

func TestClientHealthzTracksReadiness(t *testing.T) {
	o, c := newDaemon(t, "kvs")
	ctx := context.Background()

	if !c.Healthy(ctx) {
		t.Fatal("no probe installed: want healthy")
	}
	serving := false
	o.SetReady(func() bool { return serving })
	if c.Healthy(ctx) {
		t.Fatal("engine not serving: want unhealthy")
	}
	serving = true
	if !c.Healthy(ctx) {
		t.Fatal("engine serving: want healthy")
	}
}

func TestClientHealthyFalseOnDeadServer(t *testing.T) {
	c := NewClient("127.0.0.1:1") // nothing listens there
	if c.Healthy(context.Background()) {
		t.Fatal("dead server reported healthy")
	}
}

func TestClientServicesAndPin(t *testing.T) {
	_, c := newDaemon(t, "kvs")
	ctx := context.Background()

	all, err := c.Services(ctx)
	if err != nil || len(all) != 1 || all[0].Name != "kvs" {
		t.Fatalf("Services = %+v, %v", all, err)
	}
	st, err := c.Service(ctx, "kvs")
	if err != nil || st.Placement != "host" {
		t.Fatalf("Service = %+v, %v", st, err)
	}

	st, err = c.Pin(ctx, "kvs", "network")
	if err != nil {
		t.Fatal(err)
	}
	if st.Placement != "network" || st.Pinned != "network" {
		t.Fatalf("after pin: %+v", st)
	}
	st, err = c.Pin(ctx, "kvs", "host")
	if err != nil || st.Placement != "host" {
		t.Fatalf("after unpin-to-host: %+v, %v", st, err)
	}
}

// flakyServer answers 5xx for the first fails requests, then delegates to
// ok. It returns the client and a counter of requests seen.
func flakyServer(t *testing.T, fails int, ok http.HandlerFunc) (*Client, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(fails) {
			http.Error(w, `{"error":"warming up"}`, http.StatusInternalServerError)
			return
		}
		ok(w, r)
	}))
	t.Cleanup(srv.Close)
	return NewClient(strings.TrimPrefix(srv.URL, "http://")), &calls
}

func TestClientRetriesTransient5xx(t *testing.T) {
	c, calls := flakyServer(t, 2, func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`[{"name":"kvs","placement":"host"}]`))
	})
	all, err := c.Services(context.Background())
	if err != nil {
		t.Fatalf("call should survive two 500s: %v", err)
	}
	if len(all) != 1 || all[0].Name != "kvs" {
		t.Fatalf("Services = %+v", all)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (two failures + success)", got)
	}
	if got := c.Retries(); got != 2 {
		t.Fatalf("Retries() = %d, want 2", got)
	}
}

func TestClientFailsFastOnPermanent4xx(t *testing.T) {
	_, c := newDaemon(t, "kvs")
	if _, err := c.Service(context.Background(), "nope"); err == nil {
		t.Fatal("404 must error")
	}
	if got := c.Retries(); got != 0 {
		t.Fatalf("4xx must not be retried, Retries() = %d", got)
	}
}

func TestClientRetriesExhaustTransportError(t *testing.T) {
	c := NewClient("127.0.0.1:1") // nothing listens there
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if _, err := c.Services(ctx); err == nil {
		t.Fatal("dead server must error")
	}
	if got := c.Retries(); got != retryAttempts-1 {
		t.Fatalf("Retries() = %d, want %d (all backed-off attempts)", got, retryAttempts-1)
	}
	// Backoff must have actually slept between attempts, but capped: well
	// under the sum of caps.
	if d := time.Since(start); d > 4*time.Second {
		t.Fatalf("retry loop took %v, backoff cap not honored", d)
	}
}

func TestClientRetryStopsOnCanceledContext(t *testing.T) {
	c := NewClient("127.0.0.1:1")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Services(ctx); err == nil {
		t.Fatal("canceled context must error")
	}
	if got := c.Retries(); got > 1 {
		t.Fatalf("canceled context must stop the retry loop, Retries() = %d", got)
	}
}

func TestClientErrorsSurfaceServerMessage(t *testing.T) {
	_, c := newDaemon(t, "kvs")
	ctx := context.Background()

	if _, err := c.Service(ctx, "nope"); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown service error = %v, want HTTP 404 surfaced", err)
	}
	if _, err := c.Dataplane(ctx, "kvs"); err == nil {
		t.Fatal("no dataplane attached: want error")
	}
}
