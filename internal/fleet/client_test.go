package fleet

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"incod/internal/core"
	"incod/internal/daemon"
)

// newDaemon stands up a real orchestrator with one threshold-policy
// service behind its real /v1 handler, returning the fleet-side client.
func newDaemon(t *testing.T, service string) (*daemon.Orchestrator, *Client) {
	t.Helper()
	o := daemon.NewOrchestrator(0)
	if _, err := o.Register(service, daemon.ServiceConfig{
		Policy: core.NewThresholdPolicy(core.DefaultNetworkConfig(100)),
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(o.Handler())
	t.Cleanup(srv.Close)
	return o, NewClient(strings.TrimPrefix(srv.URL, "http://"))
}

func TestClientHealthzTracksReadiness(t *testing.T) {
	o, c := newDaemon(t, "kvs")
	ctx := context.Background()

	if !c.Healthy(ctx) {
		t.Fatal("no probe installed: want healthy")
	}
	serving := false
	o.SetReady(func() bool { return serving })
	if c.Healthy(ctx) {
		t.Fatal("engine not serving: want unhealthy")
	}
	serving = true
	if !c.Healthy(ctx) {
		t.Fatal("engine serving: want healthy")
	}
}

func TestClientHealthyFalseOnDeadServer(t *testing.T) {
	c := NewClient("127.0.0.1:1") // nothing listens there
	if c.Healthy(context.Background()) {
		t.Fatal("dead server reported healthy")
	}
}

func TestClientServicesAndPin(t *testing.T) {
	_, c := newDaemon(t, "kvs")
	ctx := context.Background()

	all, err := c.Services(ctx)
	if err != nil || len(all) != 1 || all[0].Name != "kvs" {
		t.Fatalf("Services = %+v, %v", all, err)
	}
	st, err := c.Service(ctx, "kvs")
	if err != nil || st.Placement != "host" {
		t.Fatalf("Service = %+v, %v", st, err)
	}

	st, err = c.Pin(ctx, "kvs", "network")
	if err != nil {
		t.Fatal(err)
	}
	if st.Placement != "network" || st.Pinned != "network" {
		t.Fatalf("after pin: %+v", st)
	}
	st, err = c.Pin(ctx, "kvs", "host")
	if err != nil || st.Placement != "host" {
		t.Fatalf("after unpin-to-host: %+v, %v", st, err)
	}
}

func TestClientErrorsSurfaceServerMessage(t *testing.T) {
	_, c := newDaemon(t, "kvs")
	ctx := context.Background()

	if _, err := c.Service(ctx, "nope"); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown service error = %v, want HTTP 404 surfaced", err)
	}
	if _, err := c.Dataplane(ctx, "kvs"); err == nil {
		t.Fatal("no dataplane attached: want error")
	}
}
