// Package fleet is the datacenter-scale control plane of the paper's §6
// argument made live: a controller (cmd/incfleetd) that supervises N
// daemon instances (inckvsd, incdnsd, incpaxosd acceptors) through their
// existing /v1 HTTP APIs, enforces a global offload budget, replays the
// internal/cluster demand traces as real traffic, and aggregates the
// per-daemon measurements into a fleet-wide day-saving energy figure —
// the simulated curve of internal/cluster reproduced from live serving.
//
// # Budget scheduler invariants
//
// On-demand offload only pays off fleet-wide when *which* servers light
// their NIC tier is a global decision under a power/NIC budget. The
// Scheduler (budget.go) maintains, by construction:
//
//   - Bounded lighting: at most K members have a lit offload tier at any
//     instant. A light action is only emitted while lit < K; swapping a
//     better candidate in always douses the incumbent first and lights
//     the challenger on a later tick, so the count never passes through
//     K+1.
//
//   - Staggered shifts: at most one placement action is emitted per
//     planning tick, and none at all while any member still reports a
//     transition in flight. Two daemons never migrate state at the same
//     time, so fleet-wide serving capacity degrades by at most one
//     member's transition overlap.
//
//   - No placement flapping: a candidate must hold its ranking verdict
//     for Hold consecutive ticks before an action is emitted, and the
//     light/douse thresholds are hysteretic (light above LightMarginW,
//     douse only below DouseMarginW < LightMarginW). An incumbent is
//     preempted only when a challenger has out-ranked it by SwapMarginW
//     for Hold ticks.
//
//   - Determinism: equal-saving candidates are ordered by name, so the
//     same inputs always plan the same actions.
//
// The controller (controller.go) applies scheduler actions as manual
// placement pins (POST /v1/services/{name}/placement), which override
// each daemon's local policy — global budget beats local greed. Every
// member is pinned to host at adoption, so a fleet starts dark and only
// lights tiers the budget grants.
//
// # Energy accounting
//
// Each control tick samples every member's /v1 status and dataplane
// stats and integrates two modeled power draws over wall time, using the
// member's §4 software curve and the measured tier hit ratio:
//
//	software-only: P_sw(modeled kpps)
//	on-demand:     P_sw(modeled host-residual kpps) + reported tier watts
//	               while lit; P_sw(modeled kpps) while dark (the parked
//	               card is partial-reconfigured down to the reference NIC
//	               the §4 idle figure already includes — §9.2)
//
// Loopback cannot offer datacenter rates, so measured kpps are scaled by
// a configured RateScale into modeled kpps (the trace replayer divides
// by the same factor when generating load), and the compressed wall
// clock is scaled back to the trace's native duration when reporting
// kWh. What is *measured* is real: served rates, hit ratios, shift
// counts and durations, and wrong answers from the load generators'
// reports — the model only converts those measurements into watts.
package fleet
