//go:build !windows

package fleet

import "syscall"

// sysProcAttr puts spawned daemons in their own process group so a
// fleet teardown signal never reaches the controller itself.
func sysProcAttr() *syscall.SysProcAttr {
	return &syscall.SysProcAttr{Setpgid: true}
}
