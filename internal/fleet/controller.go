package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"
)

// Member is one supervised daemon instance.
type Member struct {
	// Name uniquely identifies the member fleet-wide (e.g. "kvs-0").
	Name string `json:"name"`
	// Kind is the daemon flavor: "kvs", "dns" or "paxos".
	Kind string `json:"kind"`
	// Ctrl is the /v1 control API hostport.
	Ctrl string `json:"ctrl"`
	// Data is the UDP serving hostport load generators target.
	Data string `json:"data"`

	spec   KindSpec
	client *Client
}

// Config parameterizes the fleet controller.
type Config struct {
	// Members is the fleet roster.
	Members []Member
	// Sched tunes the budget scheduler (K is the global lit budget).
	Sched SchedulerConfig
	// Period is the planning tick (default 500ms).
	Period time.Duration
	// RateScale maps measured loopback kpps to modeled datacenter kpps
	// (modeled = measured * RateScale; default 1).
	RateScale float64
	// WallScale maps compressed replay wall time back to the trace's
	// native duration for energy integration (default 1).
	WallScale float64
	// Logf receives controller progress lines; nil uses log.Printf.
	Logf func(format string, args ...any)
}

// MemberStatus is one member's row in a fleet snapshot.
type MemberStatus struct {
	Name      string `json:"name"`
	Kind      string `json:"kind"`
	Ctrl      string `json:"ctrl"`
	Data      string `json:"data,omitempty"`
	Healthy   bool   `json:"healthy"`
	Placement string `json:"placement,omitempty"`
	Lit       bool   `json:"lit"`
	Shifting  bool   `json:"shifting,omitempty"`
	Shifts    int    `json:"shifts"`

	MeasuredKpps float64 `json:"measured_kpps"`
	ModeledKpps  float64 `json:"modeled_kpps"`
	HitRatio     float64 `json:"hit_ratio"`

	// SoftwareWatts is the software-only fleet's modeled draw for this
	// member; OnDemandWatts is the on-demand fleet's (host residual plus
	// tier); SavingW is the scheduler's light-vs-dark ranking input.
	SoftwareWatts float64 `json:"software_watts"`
	OnDemandWatts float64 `json:"on_demand_watts"`
	SavingW       float64 `json:"saving_w"`

	Error string `json:"error,omitempty"`
}

// EnergyTotals is the fleet's integrated energy account.
type EnergyTotals struct {
	// ModeledSeconds is integrated wall time scaled by WallScale.
	ModeledSeconds float64 `json:"modeled_seconds"`
	// SoftwareOnlyKWh is the modeled energy of a fleet with no NICs.
	SoftwareOnlyKWh float64 `json:"software_only_kwh"`
	// OnDemandKWh is the modeled energy of the budgeted on-demand fleet.
	OnDemandKWh float64 `json:"on_demand_kwh"`
	// SavedKWh and SavedPct compare the two.
	SavedKWh float64 `json:"saved_kwh"`
	SavedPct float64 `json:"saved_pct"`
}

// CurvePoint is one tick of the fleet-wide day-saving curve.
type CurvePoint struct {
	// Seconds is modeled time since the controller started.
	Seconds float64 `json:"seconds"`
	// ModeledKpps is the fleet's total modeled offered rate.
	ModeledKpps float64 `json:"modeled_kpps"`
	// Lit is how many tiers were lit.
	Lit int `json:"lit"`
	// SoftwareWatts / OnDemandWatts are the fleet's modeled draws.
	SoftwareWatts float64 `json:"software_watts"`
	OnDemandWatts float64 `json:"on_demand_watts"`
}

// Snapshot is the /v1/fleet payload.
type Snapshot struct {
	K         int     `json:"k"`
	Members   int     `json:"members"`
	Healthy   int     `json:"healthy"`
	Lit       int     `json:"lit"`
	Ticks     int     `json:"ticks"`
	Shifts    int     `json:"shifts"`
	RateScale float64 `json:"rate_scale"`
	WallScale float64 `json:"wall_scale"`

	// MaxLit is the peak simultaneous lit count ever observed;
	// BudgetViolations counts ticks where it exceeded K, and
	// ConcurrentShiftsMax the most simultaneous in-flight transitions —
	// the scheduler invariants, measured rather than assumed.
	MaxLit              int `json:"max_lit"`
	BudgetViolations    int `json:"budget_violations"`
	ConcurrentShiftsMax int `json:"concurrent_shifts_max"`

	// RetriesTotal counts transient-failure retries the controller's
	// member clients spent (backoff policy in client.go) — a cheap fleet
	// health signal: rising retries with steady Healthy means members are
	// flapping faster than the poll notices.
	RetriesTotal uint64 `json:"retries_total"`

	Energy EnergyTotals   `json:"energy"`
	Roster []MemberStatus `json:"roster"`
}

// Controller polls the fleet, integrates the energy account, and applies
// budget scheduler actions as placement pins.
type Controller struct {
	cfg   Config
	sched *Scheduler
	logf  func(string, ...any)

	mu          sync.Mutex // guards everything below
	snap        Snapshot
	curve       []CurvePoint
	lastAt      time.Time
	modeledSecs float64
	joulesSoft  float64
	joulesOnd   float64
	// lastHit remembers each member's last real measured tier hit ratio,
	// so a parked tier is ranked by what it actually did, not the
	// prediction.
	lastHit map[string]float64
}

// NewController validates cfg and builds a controller. Member names must
// be unique and kinds known.
func NewController(cfg Config) (*Controller, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("fleet: no members")
	}
	if cfg.Period <= 0 {
		cfg.Period = 500 * time.Millisecond
	}
	if cfg.RateScale <= 0 {
		cfg.RateScale = 1
	}
	if cfg.WallScale <= 0 {
		cfg.WallScale = 1
	}
	seen := make(map[string]bool, len(cfg.Members))
	for i := range cfg.Members {
		m := &cfg.Members[i]
		if m.Name == "" || seen[m.Name] {
			return nil, fmt.Errorf("fleet: member %d needs a unique name (%q)", i, m.Name)
		}
		seen[m.Name] = true
		spec, err := LookupKind(m.Kind)
		if err != nil {
			return nil, err
		}
		m.spec = spec
		m.client = NewClient(m.Ctrl)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	c := &Controller{
		cfg:     cfg,
		sched:   NewScheduler(cfg.Sched),
		logf:    logf,
		lastHit: make(map[string]float64, len(cfg.Members)),
	}
	c.snap = Snapshot{
		K:         c.sched.Config().K,
		Members:   len(cfg.Members),
		RateScale: cfg.RateScale,
		WallScale: cfg.WallScale,
	}
	return c, nil
}

// Run ticks the controller until ctx is done.
func (c *Controller) Run(ctx context.Context) {
	tick := time.NewTicker(c.cfg.Period)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			c.Tick(ctx)
		}
	}
}

// sample is one member's polled state.
type sample struct {
	status MemberStatus
	cand   Candidate
}

// Tick performs one poll + account + plan + apply round. Applying a
// planned action is synchronous — the pin returns only after the
// member's transition task lands — which, combined with the scheduler
// emitting at most one action per tick, staggers migrations fleet-wide.
func (c *Controller) Tick(ctx context.Context) {
	now := time.Now()
	samples := c.poll(ctx)

	c.mu.Lock()
	dt := 0.0
	if !c.lastAt.IsZero() {
		dt = now.Sub(c.lastAt).Seconds() * c.cfg.WallScale
	}
	c.lastAt = now

	var (
		cands                  []Candidate
		roster                 = make([]MemberStatus, len(samples))
		softW                  float64
		ondW                   float64
		fleetKpps              float64
		lit, healthy, shifting int
	)
	for i, s := range samples {
		roster[i] = s.status
		if !s.status.Healthy {
			continue
		}
		healthy++
		if s.status.Lit {
			lit++
		}
		if s.status.Shifting {
			shifting++
		}
		softW += s.status.SoftwareWatts
		ondW += s.status.OnDemandWatts
		fleetKpps += s.status.ModeledKpps
		cands = append(cands, s.cand)
	}
	c.modeledSecs += dt
	c.joulesSoft += softW * dt
	c.joulesOnd += ondW * dt

	c.snap.Roster = roster
	c.snap.Healthy = healthy
	c.snap.Lit = lit
	c.snap.Ticks++
	if lit > c.snap.MaxLit {
		c.snap.MaxLit = lit
	}
	if lit > c.snap.K {
		c.snap.BudgetViolations++
	}
	if shifting > c.snap.ConcurrentShiftsMax {
		c.snap.ConcurrentShiftsMax = shifting
	}
	c.snap.Energy = c.energyLocked()
	c.curve = append(c.curve, CurvePoint{
		Seconds:       c.snap.Energy.ModeledSeconds,
		ModeledKpps:   fleetKpps,
		Lit:           lit,
		SoftwareWatts: softW,
		OnDemandWatts: ondW,
	})

	action, ok := c.sched.Plan(cands)
	c.mu.Unlock()
	if !ok {
		return
	}
	c.apply(ctx, action)
}

func (c *Controller) energyLocked() EnergyTotals {
	const joulesPerKWh = 3.6e6
	e := EnergyTotals{
		ModeledSeconds:  c.modeledSecs,
		SoftwareOnlyKWh: c.joulesSoft / joulesPerKWh,
		OnDemandKWh:     c.joulesOnd / joulesPerKWh,
	}
	e.SavedKWh = e.SoftwareOnlyKWh - e.OnDemandKWh
	if e.SoftwareOnlyKWh > 0 {
		e.SavedPct = 100 * e.SavedKWh / e.SoftwareOnlyKWh
	}
	return e
}

// apply pins the planned member and records the outcome.
func (c *Controller) apply(ctx context.Context, a Action) {
	var target *Member
	for i := range c.cfg.Members {
		if c.cfg.Members[i].Name == a.Member {
			target = &c.cfg.Members[i]
			break
		}
	}
	if target == nil {
		return
	}
	placement := "network"
	if a.Kind == Douse {
		placement = "host"
	}
	actx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	start := time.Now()
	_, err := target.client.Pin(actx, target.spec.Service, placement)
	if err != nil {
		c.logf("fleet: %s %s failed: %v", a.Kind, a.Member, err)
		return
	}
	c.logf("fleet: %s %s in %v (%s)", a.Kind, a.Member,
		time.Since(start).Round(time.Millisecond), a.Reason)
	c.mu.Lock()
	c.snap.Shifts++
	c.mu.Unlock()
}

// poll fans out to every member concurrently and models its power draws.
func (c *Controller) poll(ctx context.Context) []sample {
	out := make([]sample, len(c.cfg.Members))
	var wg sync.WaitGroup
	for i := range c.cfg.Members {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = c.pollMember(ctx, &c.cfg.Members[i])
		}(i)
	}
	wg.Wait()
	return out
}

func (c *Controller) pollMember(ctx context.Context, m *Member) sample {
	st := MemberStatus{Name: m.Name, Kind: m.Kind, Ctrl: m.Ctrl, Data: m.Data}
	mctx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()

	svc, err := m.client.Service(mctx, m.spec.Service)
	if err != nil {
		st.Error = err.Error()
		return sample{status: st, cand: Candidate{Name: m.Name}}
	}
	st.Healthy = true
	st.Placement = svc.Placement
	st.Lit = svc.Placement == "network"
	st.Shifting = svc.Shifting
	st.Shifts = svc.Shifts
	st.MeasuredKpps = svc.WindowKpps
	st.ModeledKpps = svc.WindowKpps * c.cfg.RateScale

	// Dataplane stats carry the tier's measured hit ratio and power; a
	// member may legitimately lack an attached engine (advisory), in
	// which case predictions stand in.
	hit, tierW := m.spec.PredictedHitRatio, m.spec.TierActiveWatts
	measuredHit := false
	if dp, err := m.client.Dataplane(mctx, m.spec.Service); err == nil {
		if dp.TierName != "" && dp.TierHitRatio > 0 {
			c.mu.Lock()
			c.lastHit[m.Name] = dp.TierHitRatio
			c.mu.Unlock()
			hit, measuredHit = dp.TierHitRatio, true
		}
		if st.Lit && dp.TierPowerWatts > 0 {
			tierW = dp.TierPowerWatts
		}
	}
	if !measuredHit {
		c.mu.Lock()
		if h, ok := c.lastHit[m.Name]; ok {
			hit = h
		}
		c.mu.Unlock()
	}
	st.HitRatio = hit

	curve := m.spec.Curve
	modeled := st.ModeledKpps
	residual := modeled * (1 - hit)

	// Software-only fleet: the host serves everything, no card at all.
	st.SoftwareWatts = curve.Power(modeled)
	// On-demand fleet: lit members serve the residual on the host and
	// pay the active tier; dark members serve everything and carry the
	// parked card.
	darkW := curve.Power(modeled) + m.spec.TierParkedWatts
	litW := curve.Power(residual) + tierW
	if st.Lit {
		st.OnDemandWatts = litW
	} else {
		st.OnDemandWatts = darkW
	}
	// The scheduler ranks by what lighting would change within the
	// on-demand fleet.
	st.SavingW = darkW - litW

	return sample{
		status: st,
		cand: Candidate{
			Name:     m.Name,
			Lit:      st.Lit,
			Shifting: st.Shifting,
			SavingW:  st.SavingW,
		},
	}
}

// Snapshot returns the latest fleet snapshot.
func (c *Controller) Snapshot() Snapshot {
	c.mu.Lock()
	s := c.snap
	s.Roster = append([]MemberStatus(nil), c.snap.Roster...)
	c.mu.Unlock()
	for i := range c.cfg.Members {
		if cl := c.cfg.Members[i].client; cl != nil {
			s.RetriesTotal += cl.Retries()
		}
	}
	return s
}

// Curve returns the accumulated day-saving curve points.
func (c *Controller) Curve() []CurvePoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]CurvePoint(nil), c.curve...)
}

// AdoptAll pins every member's service to the host so the fleet starts
// dark and only lights what the budget grants. It returns the first
// error but tries every member.
func (c *Controller) AdoptAll(ctx context.Context) error {
	var first error
	for i := range c.cfg.Members {
		m := &c.cfg.Members[i]
		actx, cancel := context.WithTimeout(ctx, 10*time.Second)
		_, err := m.client.Pin(actx, m.spec.Service, "host")
		cancel()
		if err != nil && first == nil {
			first = fmt.Errorf("fleet: adopt %s: %w", m.Name, err)
		}
	}
	return first
}

// Handler serves GET /v1/fleet (the snapshot) and GET /v1/fleet/curve.
func (c *Controller) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		writeFleetJSON(w, c.Snapshot())
	})
	mux.HandleFunc("GET /v1/fleet/curve", func(w http.ResponseWriter, r *http.Request) {
		writeFleetJSON(w, c.Curve())
	})
	return mux
}

func writeFleetJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
