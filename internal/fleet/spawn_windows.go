//go:build windows

package fleet

import "syscall"

// Windows has no process groups in the POSIX sense; spawn plainly.
func sysProcAttr() *syscall.SysProcAttr { return nil }
