package fleet

import "sort"

// Candidate is one fleet member's offload ranking input for a planning
// tick: who it is, whether its tier is lit or mid-shift, and the modeled
// watts the fleet would save (or is saving) by serving it from the NIC.
type Candidate struct {
	// Name uniquely identifies the member (its control address).
	Name string
	// Lit reports whether the member's offload tier currently serves.
	Lit bool
	// Shifting reports a placement transition in flight.
	Shifting bool
	// SavingW is the modeled watts saved by network placement at the
	// member's current offered load: P_sw(kpps) - P_ondemand(kpps).
	// Negative means offload costs power at this load.
	SavingW float64
}

// ActionKind is what the scheduler wants done to one member.
type ActionKind int

// Actions.
const (
	// Light pins the member's service to the network tier.
	Light ActionKind = iota
	// Douse pins the member's service back to the host.
	Douse
)

// String names the action.
func (k ActionKind) String() string {
	if k == Douse {
		return "douse"
	}
	return "light"
}

// Action is one placement change the controller should apply.
type Action struct {
	Kind   ActionKind
	Member string
	// Reason is a human-readable justification for the transition log.
	Reason string
}

// SchedulerConfig tunes the budget scheduler's hysteresis.
type SchedulerConfig struct {
	// K is the global budget: the maximum number of simultaneously lit
	// offload tiers.
	K int
	// Hold is how many consecutive ticks a verdict (light X, douse Y,
	// swap X for Y) must repeat before the action is emitted. Minimum 1.
	Hold int
	// LightMarginW: a dark member only becomes light-eligible when its
	// saving exceeds this (watts).
	LightMarginW float64
	// DouseMarginW: a lit member is only doused when its saving falls
	// below this. Must be below LightMarginW for hysteresis.
	DouseMarginW float64
	// SwapMarginW: a dark challenger only preempts a lit incumbent when
	// it out-saves it by at least this much.
	SwapMarginW float64
}

// DefaultSchedulerConfig returns margins suited to the §4 power curves,
// where lighting a tier pays ~7 W of NIC base power before any saving.
func DefaultSchedulerConfig(k int) SchedulerConfig {
	return SchedulerConfig{
		K:            k,
		Hold:         3,
		LightMarginW: 1.0,
		DouseMarginW: 0.25,
		SwapMarginW:  2.0,
	}
}

// Scheduler plans at most one placement action per tick under a global
// lit-tier budget. See the package doc for the invariants it maintains.
// It is not safe for concurrent use; the controller owns it.
type Scheduler struct {
	cfg SchedulerConfig
	// streak counts consecutive ticks the same verdict has been planned.
	streak     int
	lastAction Action
	lastValid  bool
}

// NewScheduler builds a scheduler, normalising degenerate config.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	if cfg.Hold < 1 {
		cfg.Hold = 1
	}
	if cfg.K < 0 {
		cfg.K = 0
	}
	if cfg.DouseMarginW > cfg.LightMarginW {
		cfg.DouseMarginW = cfg.LightMarginW
	}
	return &Scheduler{cfg: cfg}
}

// Config returns the normalised configuration.
func (s *Scheduler) Config() SchedulerConfig { return s.cfg }

// Plan ranks the candidates and returns at most one action. It returns
// (Action{}, false) when nothing should change this tick — including
// whenever any member is still shifting, which is what staggers
// transitions fleet-wide.
func (s *Scheduler) Plan(cands []Candidate) (Action, bool) {
	for _, c := range cands {
		if c.Shifting {
			// A migration is in flight somewhere; hold everything.
			s.reset()
			return Action{}, false
		}
	}

	want, ok := s.verdict(cands)
	if !ok {
		s.reset()
		return Action{}, false
	}
	if s.lastValid && want == s.lastAction {
		s.streak++
	} else {
		s.lastAction, s.lastValid, s.streak = want, true, 1
	}
	if s.streak < s.cfg.Hold {
		return Action{}, false
	}
	s.reset()
	return want, true
}

func (s *Scheduler) reset() {
	s.streak, s.lastValid = 0, false
}

// verdict computes the single most urgent action, ignoring hold.
// Priority: douse over-budget > douse unprofitable > light under budget >
// swap (douse incumbent first).
func (s *Scheduler) verdict(cands []Candidate) (Action, bool) {
	lit := make([]Candidate, 0, len(cands))
	dark := make([]Candidate, 0, len(cands))
	for _, c := range cands {
		if c.Lit {
			lit = append(lit, c)
		} else {
			dark = append(dark, c)
		}
	}
	// Rank best-first; ties break by name so planning is deterministic.
	byRank := func(cs []Candidate) {
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].SavingW != cs[j].SavingW {
				return cs[i].SavingW > cs[j].SavingW
			}
			return cs[i].Name < cs[j].Name
		})
	}
	byRank(lit)
	byRank(dark)

	// Over budget (K was lowered, or an adopted fleet came up lit):
	// douse the worst lit member.
	if len(lit) > s.cfg.K {
		w := lit[len(lit)-1]
		return Action{Douse, w.Name, "over budget"}, true
	}
	// A lit member that no longer pays for itself goes dark regardless
	// of spare budget.
	if len(lit) > 0 {
		w := lit[len(lit)-1]
		if w.SavingW < s.cfg.DouseMarginW {
			return Action{Douse, w.Name, "unprofitable"}, true
		}
	}
	// Spare budget: light the best dark member that clears the margin.
	if len(lit) < s.cfg.K && len(dark) > 0 && dark[0].SavingW > s.cfg.LightMarginW {
		return Action{Light, dark[0].Name, "best saving under budget"}, true
	}
	// Budget full: a sufficiently better challenger preempts the worst
	// incumbent. Douse first — the challenger lights on a later tick, so
	// the lit count never exceeds K.
	if len(lit) == s.cfg.K && s.cfg.K > 0 && len(dark) > 0 {
		worst := lit[len(lit)-1]
		if dark[0].SavingW > worst.SavingW+s.cfg.SwapMarginW &&
			dark[0].SavingW > s.cfg.LightMarginW {
			return Action{Douse, worst.Name, "preempted by " + dark[0].Name}, true
		}
	}
	return Action{}, false
}
