package fleet

import (
	"encoding/json"
	"fmt"
	"os"
)

// Report is the machine-readable outcome of one fleet run — the payload
// of FLEET_6.json, the live counterpart of the simulated day-saving
// numbers in BENCH.md.
type Report struct {
	// Members and K restate the run's shape.
	Members int `json:"members"`
	K       int `json:"k"`

	// Snapshot is the controller's final fleet state, including the
	// measured scheduler invariants (max_lit, budget_violations,
	// concurrent_shifts_max) and the integrated energy account.
	Snapshot Snapshot `json:"snapshot"`

	// Curve is the tick-by-tick fleet draw, software-only vs on-demand.
	Curve []CurvePoint `json:"curve"`

	// Workers are the load generators' end-of-run reports.
	Workers []WorkerResult `json:"workers"`

	// Traffic totals across all workers. WrongAnswers sums replies that
	// failed to decode (the generators' bad counters).
	SentTotal     uint64 `json:"sent_total"`
	AnsweredTotal uint64 `json:"answered_total"`
	WrongAnswers  uint64 `json:"wrong_answers"`

	// Day extrapolation: the modeled energy account scaled to 24 hours,
	// so runs replaying partial or compressed days report comparable
	// kWh/day figures.
	SoftwareOnlyKWhDay float64 `json:"software_only_kwh_day"`
	OnDemandKWhDay     float64 `json:"on_demand_kwh_day"`
	SavedKWhDay        float64 `json:"saved_kwh_day"`
	SavedPct           float64 `json:"saved_pct"`
}

// BuildReport assembles the run outcome from the controller's final
// snapshot and curve plus the workers' reports.
func BuildReport(snap Snapshot, curve []CurvePoint, workers []WorkerResult) Report {
	r := Report{
		Members:  snap.Members,
		K:        snap.K,
		Snapshot: snap,
		Curve:    curve,
		Workers:  workers,
		SavedPct: snap.Energy.SavedPct,
	}
	for _, w := range workers {
		if w.Report == nil {
			continue
		}
		r.SentTotal += w.Report.Sent
		r.AnsweredTotal += w.Report.Answered
		r.WrongAnswers += w.Report.Bad
	}
	if secs := snap.Energy.ModeledSeconds; secs > 0 {
		f := 86400 / secs
		r.SoftwareOnlyKWhDay = snap.Energy.SoftwareOnlyKWh * f
		r.OnDemandKWhDay = snap.Energy.OnDemandKWh * f
		r.SavedKWhDay = snap.Energy.SavedKWh * f
	}
	return r
}

// WriteFile writes the report as indented JSON.
func (r Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Check asserts the run reproduced the paper's fleet claims: the budget
// was never violated, the full budget was exercised at peak, shifts were
// staggered, no generator saw a wrong answer, traffic actually flowed,
// and on-demand offload saved energy. It returns every failure joined,
// nil on a clean run.
func (r Report) Check() error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if r.Snapshot.BudgetViolations > 0 {
		fail("budget violated on %d ticks (max lit %d > k=%d)",
			r.Snapshot.BudgetViolations, r.Snapshot.MaxLit, r.K)
	}
	if r.Snapshot.MaxLit < r.K {
		fail("budget under-used: max lit %d, want k=%d at peak", r.Snapshot.MaxLit, r.K)
	}
	if r.Snapshot.ConcurrentShiftsMax > 1 {
		fail("shifts not staggered: %d concurrent transitions observed",
			r.Snapshot.ConcurrentShiftsMax)
	}
	if r.WrongAnswers > 0 {
		fail("%d wrong answers across %d sent", r.WrongAnswers, r.SentTotal)
	}
	if r.AnsweredTotal == 0 {
		fail("no traffic answered (sent %d)", r.SentTotal)
	}
	if r.SavedKWhDay <= 0 {
		fail("no energy saved: %.4f kWh/day (software-only %.4f, on-demand %.4f)",
			r.SavedKWhDay, r.SoftwareOnlyKWhDay, r.OnDemandKWhDay)
	}
	if len(errs) == 0 {
		return nil
	}
	joined := "fleet: run assertions failed:"
	for _, e := range errs {
		joined += "\n  - " + e.Error()
	}
	return fmt.Errorf("%s", joined)
}
