package fleet

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"
)

// Proc is one spawned daemon process under fleet supervision.
type Proc struct {
	Member Member
	cmd    *exec.Cmd
	log    *os.File
}

// Spawner launches and reaps local daemon instances for the fleet.
type Spawner struct {
	// BinDir is where the daemon executables live (inckvsd, incdnsd,
	// incpaxosd).
	BinDir string
	// Dir receives per-member daemon logs.
	Dir string
	// Logf receives progress lines; nil is silent.
	Logf func(format string, args ...any)
	// ExtraArgs is appended to every spawned daemon's command line after
	// the fleet-owned flags, so an operator can push I/O tuning
	// (-engine uring -sockets 4 -pin) to the whole fleet without the
	// spawner knowing each flag.
	ExtraArgs []string

	procs []*Proc
}

func (s *Spawner) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// freePort reserves an OS-assigned port of the given network on loopback
// and immediately releases it. The tiny claim/bind race is acceptable
// for a single-host smoke fleet.
func freePort(network string) (int, error) {
	switch network {
	case "udp":
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		defer pc.Close()
		return pc.LocalAddr().(*net.UDPAddr).Port, nil
	default:
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		defer l.Close()
		return l.Addr().(*net.TCPAddr).Port, nil
	}
}

// Spawn launches one daemon of the given kind as member name, on fresh
// loopback ports, with its NIC tier attached and placement held by a
// static-host policy until the fleet pins it. It does not wait for
// readiness; use WaitHealthy.
func (s *Spawner) Spawn(kind, name string) (Member, error) {
	spec, err := LookupKind(kind)
	if err != nil {
		return Member{}, err
	}
	dataPort, err := freePort("udp")
	if err != nil {
		return Member{}, fmt.Errorf("fleet: reserve data port: %w", err)
	}
	ctrlPort, err := freePort("tcp")
	if err != nil {
		return Member{}, fmt.Errorf("fleet: reserve ctrl port: %w", err)
	}
	m := Member{
		Name: name,
		Kind: kind,
		Ctrl: fmt.Sprintf("127.0.0.1:%d", ctrlPort),
		Data: fmt.Sprintf("127.0.0.1:%d", dataPort),
		spec: spec,
	}
	args := []string{
		"-addr", m.Data,
		"-ctrl", m.Ctrl,
		"-nictier",
		// The fleet owns placement: a local static-host policy keeps the
		// member dark until a budget pin overrides it.
		"-policy", "static-host",
	}
	if kind == "paxos" {
		args = append(args, "-role", "acceptor", "-id", "0")
	}
	args = append(args, s.ExtraArgs...)
	cmd := exec.Command(filepath.Join(s.BinDir, spec.Binary), args...)
	cmd.SysProcAttr = sysProcAttr()
	p := &Proc{Member: m, cmd: cmd}
	if s.Dir != "" {
		if f, err := os.Create(filepath.Join(s.Dir, name+".daemon.log")); err == nil {
			cmd.Stdout, cmd.Stderr = f, f
			p.log = f
		}
	}
	if err := cmd.Start(); err != nil {
		if p.log != nil {
			_ = p.log.Close()
		}
		return Member{}, fmt.Errorf("fleet: start %s (%s): %w", name, spec.Binary, err)
	}
	s.procs = append(s.procs, p)
	s.logf("fleet: spawned %s (%s) data=%s ctrl=%s pid=%d",
		name, spec.Binary, m.Data, m.Ctrl, cmd.Process.Pid)
	return m, nil
}

// SpawnMix launches one member per kind in kinds, named <kind>-<i>.
func (s *Spawner) SpawnMix(kinds []string) ([]Member, error) {
	members := make([]Member, 0, len(kinds))
	perKind := make(map[string]int)
	for _, kind := range kinds {
		name := fmt.Sprintf("%s-%d", kind, perKind[kind])
		perKind[kind]++
		m, err := s.Spawn(kind, name)
		if err != nil {
			s.Stop(5 * time.Second)
			return nil, err
		}
		members = append(members, m)
	}
	return members, nil
}

// WaitHealthy blocks until every member's /v1/healthz answers 200 — the
// dataplane engine is serving — or the deadline passes. The probe cadence
// backs off exponentially (10ms doubling to a 500ms cap) per member, so a
// fast boot is noticed within milliseconds while a slow one isn't hammered.
func WaitHealthy(ctx context.Context, members []Member, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for i := range members {
		m := &members[i]
		if m.client == nil {
			m.client = NewClient(m.Ctrl)
		}
		probe := 10 * time.Millisecond
		for {
			hctx, cancel := context.WithTimeout(ctx, time.Second)
			ok := m.client.Healthy(hctx)
			cancel()
			if ok {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("fleet: %s (%s) not healthy after %v", m.Name, m.Ctrl, timeout)
			}
			if !sleepCtx(ctx, probe) {
				return ctx.Err()
			}
			if probe *= 2; probe > 500*time.Millisecond {
				probe = 500 * time.Millisecond
			}
		}
	}
	return nil
}

// Stop terminates every spawned daemon (SIGTERM, then SIGKILL after
// grace) and reaps them.
func (s *Spawner) Stop(grace time.Duration) {
	for _, p := range s.procs {
		if p.cmd.Process != nil {
			_ = p.cmd.Process.Signal(syscall.SIGTERM)
		}
	}
	for _, p := range s.procs {
		done := make(chan struct{})
		go func(p *Proc) {
			_ = p.cmd.Wait()
			close(done)
		}(p)
		select {
		case <-done:
		case <-time.After(grace):
			if p.cmd.Process != nil {
				_ = p.cmd.Process.Kill()
			}
			<-done
		}
		if p.log != nil {
			_ = p.log.Close()
		}
		s.logf("fleet: stopped %s", p.Member.Name)
	}
	s.procs = nil
}
