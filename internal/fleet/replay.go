package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"incod/internal/cluster"
)

// LoadReport mirrors incloadgen's -report JSON: the generator-side truth
// about what load actually arrived and how it was answered. Bad counts
// replies that failed to decode — the fleet's wrong-answer metric.
type LoadReport struct {
	Proto  string `json:"proto"`
	Target string `json:"target"`
	Phases int    `json:"phases"`

	Sent        uint64 `json:"sent"`
	Answered    uint64 `json:"answered"`
	Bad         uint64 `json:"bad"`
	Outstanding int    `json:"outstanding"`

	SendSeconds  float64 `json:"send_seconds"`
	AchievedKpps float64 `json:"achieved_kpps"`
	AnsweredKpps float64 `json:"answered_kpps"`

	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	MaxMicros float64 `json:"max_us"`

	Error string `json:"error,omitempty"`
}

// WorkerResult is one member's finished load run.
type WorkerResult struct {
	Member string `json:"member"`
	// Report is the parsed -report file; nil when the worker died before
	// writing one.
	Report *LoadReport `json:"report,omitempty"`
	// Err records a nonzero exit or unreadable report.
	Err string `json:"error,omitempty"`
}

// ProfileString converts a demand trace (modeled kpps over its native
// duration) into an incloadgen ramp profile replayed over wall, offered
// at modeled/rateScale req/s. segments bounds the profile's resolution
// (default 12 ramps).
func ProfileString(t cluster.LoadTrace, wall time.Duration, segments int, rateScale float64) string {
	if segments <= 0 {
		segments = 12
	}
	if rateScale <= 0 {
		rateScale = 1
	}
	pts := t.Sample(segments + 1)
	if len(pts) == 0 {
		return ""
	}
	if len(pts) == 1 {
		pts = append(pts, pts[0])
	}
	step := wall / time.Duration(len(pts)-1)
	if step <= 0 {
		step = time.Second
	}
	var b strings.Builder
	for i := 0; i+1 < len(pts); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		from := pts[i] * 1000 / rateScale
		to := pts[i+1] * 1000 / rateScale
		fmt.Fprintf(&b, "ramp:%.0f-%.0f:%s", from, to, step.Round(time.Millisecond))
	}
	return b.String()
}

// ReplayConfig parameterizes a fleet-wide trace replay.
type ReplayConfig struct {
	// Bin is the incloadgen executable path.
	Bin string
	// Wall is the compressed wall-clock duration each member's trace is
	// replayed over.
	Wall time.Duration
	// Segments is the ramp resolution per profile (default 12).
	Segments int
	// RateScale divides modeled trace kpps down to offered loopback
	// rates (the controller's RateScale multiplies back).
	RateScale float64
	// Dir receives per-member report and log files.
	Dir string
	// Sockets is the client socket count per worker (default 2).
	Sockets int
	// Logf receives progress lines; nil is silent.
	Logf func(format string, args ...any)
}

// Replay runs one incloadgen worker per member concurrently, each
// replaying its trace, and collects every report. The error is non-nil
// if any worker failed; results are returned regardless, in member
// order.
func Replay(ctx context.Context, cfg ReplayConfig, members []Member, traces map[string]cluster.LoadTrace) ([]WorkerResult, error) {
	if cfg.Segments <= 0 {
		cfg.Segments = 12
	}
	if cfg.RateScale <= 0 {
		cfg.RateScale = 1
	}
	if cfg.Sockets <= 0 {
		cfg.Sockets = 2
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	results := make([]WorkerResult, len(members))
	var wg sync.WaitGroup
	for i := range members {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runWorker(ctx, cfg, &members[i], traces[members[i].Name], logf)
		}(i)
	}
	wg.Wait()
	var firstErr error
	for _, r := range results {
		if r.Err != "" && firstErr == nil {
			firstErr = fmt.Errorf("fleet: worker %s: %s", r.Member, r.Err)
		}
	}
	return results, firstErr
}

func runWorker(ctx context.Context, cfg ReplayConfig, m *Member, trace cluster.LoadTrace,
	logf func(string, ...any)) WorkerResult {
	res := WorkerResult{Member: m.Name}
	if len(trace) == 0 {
		res.Err = "no trace"
		return res
	}
	if m.spec.Kind == "" {
		spec, err := LookupKind(m.Kind)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		m.spec = spec
	}
	profile := ProfileString(trace, cfg.Wall, cfg.Segments, cfg.RateScale)
	reportPath := filepath.Join(cfg.Dir, m.Name+".report.json")
	args := []string{
		"-proto", m.spec.Proto,
		"-target", m.Data,
		"-profile", profile,
		"-report", reportPath,
		"-sockets", fmt.Sprint(cfg.Sockets),
		"-quiet",
	}
	// The DNS demo zone holds 16 names; querying beyond it would turn
	// the replay into an NXDOMAIN benchmark.
	if m.spec.Proto == "dns" {
		args = append(args, "-keys", "16")
	}
	cmd := exec.CommandContext(ctx, cfg.Bin, args...)
	logPath := filepath.Join(cfg.Dir, m.Name+".loadgen.log")
	if logFile, err := os.Create(logPath); err == nil {
		defer logFile.Close()
		cmd.Stdout, cmd.Stderr = logFile, logFile
	}
	logf("fleet: replaying %s on %s (%d ramps over %v)", m.Name, m.Data, cfg.Segments, cfg.Wall)
	runErr := cmd.Run()
	if b, err := os.ReadFile(reportPath); err == nil {
		var rep LoadReport
		if jerr := json.Unmarshal(b, &rep); jerr == nil {
			res.Report = &rep
		} else {
			res.Err = "bad report: " + jerr.Error()
		}
	}
	if runErr != nil && res.Err == "" {
		res.Err = runErr.Error()
		if res.Report != nil && res.Report.Error != "" {
			res.Err = res.Report.Error
		}
	}
	return res
}
