package fleet

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"incod/internal/core"
	"incod/internal/daemon"
)

// testMember is one in-process daemon: a real orchestrator with a real
// /v1 handler, so the controller's HTTP path is exercised end to end.
type testMember struct {
	orch *daemon.Orchestrator
	ms   *daemon.ManagedService
	svc  *core.FuncService
	now  time.Time
}

func newTestMember(t *testing.T, name string) (Member, *testMember) {
	t.Helper()
	o := daemon.NewOrchestrator(0)
	svc := &core.FuncService{ServiceName: "kvs"}
	ms, err := o.Register("kvs", daemon.ServiceConfig{
		Service: svc,
		// The fleet owns placement, like the spawner's -policy
		// static-host daemons; pins override it.
		Policy: &core.StaticPolicy{Target: core.Host},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(o.Handler())
	t.Cleanup(srv.Close)
	m := Member{
		Name: name,
		Kind: "kvs",
		Ctrl: strings.TrimPrefix(srv.URL, "http://"),
		Data: "127.0.0.1:0",
	}
	return m, &testMember{orch: o, ms: ms, svc: svc, now: time.Unix(1000, 0)}
}

// serve advances the member's measured load: ticks seconds of synthetic
// time at kpps, enough of them to flush the status window.
func (tm *testMember) serve(kpps float64, seconds int) {
	for i := 0; i < seconds; i++ {
		tm.now = tm.now.Add(time.Second)
		tm.ms.ObserveN(uint64(kpps * 1000))
		tm.orch.Tick(tm.now)
	}
}

func (tm *testMember) placement() core.Placement { return tm.svc.Placement() }

func litCount(tms []*testMember) int {
	n := 0
	for _, tm := range tms {
		if tm.placement() == core.Network {
			n++
		}
	}
	return n
}

func TestControllerEnforcesBudgetOverLiveAPI(t *testing.T) {
	names := []string{"kvs-0", "kvs-1", "kvs-2"}
	members := make([]Member, len(names))
	backends := make([]*testMember, len(names))
	for i, n := range names {
		members[i], backends[i] = newTestMember(t, n)
	}

	ctrl, err := NewController(Config{
		Members: members,
		Sched: SchedulerConfig{
			K: 1, Hold: 1, LightMarginW: 1, DouseMarginW: 0.25, SwapMarginW: 2,
		},
		RateScale: 30,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := ctrl.AdoptAll(ctx); err != nil {
		t.Fatal(err)
	}

	// Distinct measured loads: 10 kpps * scale 30 = 300 modeled kpps is
	// deep in offload-pays territory; the others are marginal.
	backends[0].serve(0.5, 35)
	backends[1].serve(2, 35)
	backends[2].serve(10, 35)

	ctrl.Tick(ctx)
	if got := litCount(backends); got != 1 {
		t.Fatalf("after first tick: %d lit, want 1", got)
	}
	if backends[2].placement() != core.Network {
		t.Fatal("the highest-load member should have been lit first")
	}

	// Steady state: re-ticking the same load changes nothing.
	for i := 0; i < 5; i++ {
		ctrl.Tick(ctx)
	}
	snap := ctrl.Snapshot()
	if snap.Lit != 1 || snap.MaxLit != 1 || snap.BudgetViolations != 0 {
		t.Fatalf("steady snapshot: %+v", snap)
	}
	if snap.Shifts != 1 {
		t.Fatalf("steady fleet kept shifting: %d shifts", snap.Shifts)
	}
	if snap.Healthy != 3 {
		t.Fatalf("healthy = %d, want 3", snap.Healthy)
	}

	// Demand moves: member 0 surges past the incumbent, member 2 goes
	// quiet. The scheduler swaps — douse first, light later, never two
	// lit at once.
	backends[0].serve(15, 40)
	backends[2].serve(0.2, 40)
	sawDark := false
	for i := 0; i < 6 && backends[0].placement() != core.Network; i++ {
		ctrl.Tick(ctx)
		if n := litCount(backends); n > 1 {
			t.Fatalf("swap overlit the fleet: %d lit", n)
		} else if n == 0 {
			sawDark = true
		}
	}
	if backends[0].placement() != core.Network || backends[2].placement() != core.Host {
		t.Fatalf("swap did not converge: m0=%v m2=%v",
			backends[0].placement(), backends[2].placement())
	}
	if !sawDark {
		t.Fatal("swap never passed through the all-dark step (douse must precede light)")
	}

	snap = ctrl.Snapshot()
	if snap.BudgetViolations != 0 || snap.MaxLit != 1 {
		t.Fatalf("final snapshot: %+v", snap)
	}
	if snap.Energy.ModeledSeconds <= 0 || snap.Energy.SoftwareOnlyKWh <= 0 {
		t.Fatalf("energy account empty: %+v", snap.Energy)
	}
	if len(ctrl.Curve()) != snap.Ticks {
		t.Fatalf("curve has %d points over %d ticks", len(ctrl.Curve()), snap.Ticks)
	}
}

func TestControllerSurvivesDeadMember(t *testing.T) {
	members := make([]Member, 2)
	backends := make([]*testMember, 1)
	members[0], backends[0] = newTestMember(t, "kvs-0")
	members[1] = Member{Name: "kvs-1", Kind: "kvs", Ctrl: "127.0.0.1:1", Data: "127.0.0.1:0"}

	ctrl, err := NewController(Config{
		Members:   members,
		Sched:     SchedulerConfig{K: 1, Hold: 1, LightMarginW: 1},
		RateScale: 30,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	backends[0].serve(10, 35)
	ctrl.Tick(ctx)

	snap := ctrl.Snapshot()
	if snap.Healthy != 1 || snap.Members != 2 {
		t.Fatalf("snapshot = %+v, want 1 healthy of 2", snap)
	}
	var deadRow *MemberStatus
	for i := range snap.Roster {
		if snap.Roster[i].Name == "kvs-1" {
			deadRow = &snap.Roster[i]
		}
	}
	if deadRow == nil || deadRow.Healthy || deadRow.Error == "" {
		t.Fatalf("dead member row = %+v", deadRow)
	}
	// The live member still gets scheduled.
	if backends[0].placement() != core.Network {
		t.Fatal("live member should have been lit despite a dead peer")
	}
}

func TestNewControllerValidation(t *testing.T) {
	if _, err := NewController(Config{}); err == nil {
		t.Fatal("empty roster accepted")
	}
	if _, err := NewController(Config{Members: []Member{
		{Name: "a", Kind: "kvs"}, {Name: "a", Kind: "dns"},
	}}); err == nil {
		t.Fatal("duplicate names accepted")
	}
	if _, err := NewController(Config{Members: []Member{
		{Name: "a", Kind: "mystery"},
	}}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
