// Package asic models the programmable switch ASIC of §6 (a Barefoot
// Tofino in a 1.28 Tbps, 32x40G "snake" configuration) and the §9.4
// top-of-rack power arithmetic.
//
// The paper reports only normalized power for the ASIC ("due to the large
// variance in power between different ASICs and ASIC vendors"), plus these
// relative anchors, all of which this model encodes:
//
//   - idle power is identical with and without the P4xos program;
//   - running P4xos adds no more than 2% to overall power under load;
//   - the supplied diagnostic program (diag.p4) adds 4.8% at full load;
//   - the min-to-max power span is below 20%;
//   - at 10% utilization the ASIC's absolute dynamic power is ~1/3 of the
//     server's dynamic power at 180 Kpps, while throughput is x1000;
//   - the ASIC sustains > 2.5 B consensus messages per second;
//   - §9.4: switches take < 5 W per 100G port, so a million 1500 B
//     queries per second costs < 1 W of switch dynamic power.
package asic

import (
	"math"

	"incod/internal/simnet"
	"incod/internal/telemetry"
)

// Program identifies a data-plane program loaded on the switch.
type Program struct {
	Name string
	// OverheadFraction is the relative power overhead versus plain L2
	// forwarding, phased in with load (identical at idle).
	OverheadFraction float64
	// MsgCapacityKpps is the peak application-message rate (0 for plain
	// forwarding programs).
	MsgCapacityKpps float64
}

// Programs from §6.
var (
	// L2Fwd is the baseline layer-2 forwarding program.
	L2Fwd = Program{Name: "l2fwd"}
	// P4xosL2Fwd combines forwarding with the Paxos pipeline: "the switch
	// executes both standard switching and the consensus algorithm".
	P4xosL2Fwd = Program{Name: "l2fwd+p4xos", OverheadFraction: 0.02, MsgCapacityKpps: 2_500_000}
	// DiagP4 is the vendor diagnostic program (+4.8% at full load).
	DiagP4 = Program{Name: "diag.p4", OverheadFraction: 0.048}
)

// Switch models one programmable switch ASIC.
type Switch struct {
	// Ports and PortSpeedGbps describe the physical configuration.
	Ports         int
	PortSpeedGbps float64
	// IdleWatts is the absolute idle draw (never reported raw; use
	// Normalized for paper-style figures).
	IdleWatts float64
	// DynamicFullWatts is the extra draw at 100% forwarding load.
	DynamicFullWatts float64
	// Fixed marks a fixed-function switch (cannot load programs).
	Fixed bool

	program Program
	loadFn  func() float64
}

// NewTofino returns the §6 evaluation switch: 32x40G snake, calibrated so
// the min-max span is ~16.5% and the 10%-load dynamic power is about one
// third of the server's dynamic draw at 180 Kpps.
func NewTofino() *Switch {
	return &Switch{
		Ports:            32,
		PortSpeedGbps:    40,
		IdleWatts:        200,
		DynamicFullWatts: 33,
		program:          L2Fwd,
	}
}

// CapacityGbps returns the aggregate forwarding capacity (1.28 Tbps for
// the evaluation configuration).
func (s *Switch) CapacityGbps() float64 { return float64(s.Ports) * s.PortSpeedGbps }

// Load loads a data-plane program. Loading onto a fixed-function switch
// returns false and leaves the program unchanged.
func (s *Switch) Load(p Program) bool {
	if s.Fixed && p.Name != L2Fwd.Name {
		return false
	}
	s.program = p
	return true
}

// Program returns the loaded program.
func (s *Switch) Program() Program { return s.program }

// SetLoadFunc installs the function reporting forwarding load (0..1).
func (s *Switch) SetLoadFunc(fn func() float64) { s.loadFn = fn }

// Power returns absolute watts at the given forwarding load fraction.
// Program overhead phases in with load, so idle power is program-agnostic.
func (s *Switch) Power(load float64) float64 {
	if load < 0 {
		load = 0
	}
	if load > 1 {
		load = 1
	}
	base := s.IdleWatts + s.DynamicFullWatts*load
	return base * (1 + s.program.OverheadFraction*load)
}

// Normalized returns power at the given load normalized to the idle draw,
// the unit the paper reports for ASICs.
func (s *Switch) Normalized(load float64) float64 { return s.Power(load) / s.IdleWatts }

// DynamicWatts returns power above idle at the given load — the paper's
// "absolute dynamic power consumption" (footnote 3).
func (s *Switch) DynamicWatts(load float64) float64 { return s.Power(load) - s.Power(0) }

// MsgThroughputKpps returns the application message rate at the given
// load fraction for the loaded program.
func (s *Switch) MsgThroughputKpps(load float64) float64 {
	if load < 0 {
		load = 0
	}
	if load > 1 {
		load = 1
	}
	return s.program.MsgCapacityKpps * load
}

// OpsPerWatt returns application messages per second per watt of total
// switch power at the given load.
func (s *Switch) OpsPerWatt(load float64) float64 {
	p := s.Power(load)
	if p == 0 {
		return 0
	}
	return s.MsgThroughputKpps(load) * 1000 / p
}

// PowerWatts implements telemetry.PowerSource.
func (s *Switch) PowerWatts(simnet.Time) float64 {
	var load float64
	if s.loadFn != nil {
		load = s.loadFn()
	}
	return s.Power(load)
}

var _ telemetry.PowerSource = (*Switch)(nil)

// SnakeWiring returns the §6 snake connectivity for n ports: output port i
// feeds input port (i+1) mod n, exercising every port so the device can be
// tested at full capacity. Each element is a [out, in] pair.
func SnakeWiring(n int) [][2]int {
	if n < 1 {
		return nil
	}
	pairs := make([][2]int, n)
	for i := 0; i < n; i++ {
		pairs[i] = [2]int{i, (i + 1) % n}
	}
	return pairs
}

// Per-port power arithmetic from §9.4.
const (
	// WattsPer100GPort: ToR switches take "less than 5W per 100G port".
	WattsPer100GPort = 5.0
)

// PortDynamicWatts estimates switch dynamic power for forwarding pps
// packets per second of the given size, using the §9.4 per-port figure.
// A million 1500 B packets per second costs under 1 W.
func PortDynamicWatts(pps float64, packetBytes int) float64 {
	if pps <= 0 || packetBytes <= 0 {
		return 0
	}
	gbps := pps * float64(packetBytes) * 8 / 1e9
	return math.Max(0, gbps/100) * WattsPer100GPort
}
