package asic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIdlePowerProgramAgnostic(t *testing.T) {
	// §6: "The power consumption when idle is the same for both the ASIC
	// with forwarding alone, and the ASIC with forwarding plus P4xos."
	a, b := NewTofino(), NewTofino()
	a.Load(L2Fwd)
	b.Load(P4xosL2Fwd)
	if a.Power(0) != b.Power(0) {
		t.Errorf("idle power differs: %v vs %v", a.Power(0), b.Power(0))
	}
}

func TestP4xosOverheadUnderTwoPercent(t *testing.T) {
	base, p4 := NewTofino(), NewTofino()
	p4.Load(P4xosL2Fwd)
	for load := 0.0; load <= 1.0001; load += 0.05 {
		rel := p4.Power(load)/base.Power(load) - 1
		if rel > 0.02+1e-9 {
			t.Fatalf("P4xos overhead at load %.2f = %.3f, want <= 2%%", load, rel)
		}
	}
}

func TestDiagTwiceP4xos(t *testing.T) {
	// §6: diag.p4 takes 4.8% more at full load, "more than twice that of
	// P4xos".
	diag, p4 := NewTofino(), NewTofino()
	diag.Load(DiagP4)
	p4.Load(P4xosL2Fwd)
	base := NewTofino()
	dOver := diag.Power(1)/base.Power(1) - 1
	pOver := p4.Power(1)/base.Power(1) - 1
	if math.Abs(dOver-0.048) > 0.002 {
		t.Errorf("diag overhead = %v, want ~4.8%%", dOver)
	}
	if dOver <= 2*pOver {
		t.Errorf("diag overhead %v should exceed twice P4xos' %v", dOver, pOver)
	}
}

func TestMinMaxSpanUnderTwentyPercent(t *testing.T) {
	s := NewTofino()
	s.Load(P4xosL2Fwd)
	span := s.Power(1)/s.Power(0) - 1
	if span >= 0.20 {
		t.Errorf("min-max span = %v, want < 20%%", span)
	}
	if span <= 0.05 {
		t.Errorf("span = %v; power should still grow noticeably with load", span)
	}
}

func TestTenPercentUtilizationAnchors(t *testing.T) {
	s := NewTofino()
	s.Load(P4xosL2Fwd)
	// x1000 the server's 178 K msgs/s at 10% utilization.
	msgs := s.MsgThroughputKpps(0.10)
	if msgs < 1000*178 {
		t.Errorf("ASIC at 10%% = %v kpps, want >= x1000 the 178 kpps server", msgs)
	}
	// Dynamic power ~1/3 of the server's dynamic draw at 180 Kpps (~10 W).
	dyn := s.DynamicWatts(0.10)
	if dyn < 2 || dyn > 5 {
		t.Errorf("ASIC dynamic at 10%% = %v W, want ~3.3 (1/3 of ~10 W)", dyn)
	}
}

func TestOpsPerWattLadder(t *testing.T) {
	// §6: "the ASIC implementation easily achieves 10M's of messages per
	// watt" at peak.
	s := NewTofino()
	s.Load(P4xosL2Fwd)
	if opw := s.OpsPerWatt(1); opw < 1e7 {
		t.Errorf("ASIC ops/W = %v, want >= 10M", opw)
	}
	if s.OpsPerWatt(0) != 0 {
		t.Error("idle ops/W should be zero")
	}
}

func TestNormalized(t *testing.T) {
	s := NewTofino()
	if s.Normalized(0) != 1 {
		t.Errorf("Normalized(0) = %v, want 1", s.Normalized(0))
	}
	if s.Normalized(1) <= 1 || s.Normalized(1) >= 1.2 {
		t.Errorf("Normalized(1) = %v, want (1, 1.2)", s.Normalized(1))
	}
}

func TestCapacityAndSnake(t *testing.T) {
	s := NewTofino()
	if s.CapacityGbps() != 1280 {
		t.Errorf("capacity = %v Gbps, want 1280", s.CapacityGbps())
	}
	pairs := SnakeWiring(s.Ports)
	if len(pairs) != 32 {
		t.Fatalf("snake pairs = %d, want 32", len(pairs))
	}
	// Every port appears exactly once as output and once as input, and
	// the chain closes.
	seenOut := make(map[int]bool)
	seenIn := make(map[int]bool)
	for _, p := range pairs {
		if seenOut[p[0]] || seenIn[p[1]] {
			t.Fatal("snake reuses a port")
		}
		seenOut[p[0]], seenIn[p[1]] = true, true
	}
	if pairs[31][1] != 0 {
		t.Error("snake should wrap around to port 0")
	}
	if SnakeWiring(0) != nil {
		t.Error("SnakeWiring(0) should be nil")
	}
}

func TestFixedFunctionRejectsPrograms(t *testing.T) {
	s := NewTofino()
	s.Fixed = true
	if s.Load(P4xosL2Fwd) {
		t.Error("fixed-function switch must reject P4 programs")
	}
	if s.Program().Name != L2Fwd.Name {
		t.Error("rejected load must not change the program")
	}
	if !s.Load(L2Fwd) {
		t.Error("fixed-function switch still forwards")
	}
}

func TestPortDynamicWatts(t *testing.T) {
	// §9.4: a million 1500 B queries per second draws < 1 W.
	if w := PortDynamicWatts(1e6, 1500); w >= 1 {
		t.Errorf("1 Mpps x 1500 B = %v W, want < 1", w)
	}
	if PortDynamicWatts(0, 1500) != 0 || PortDynamicWatts(1e6, 0) != 0 {
		t.Error("degenerate inputs should cost 0 W")
	}
	// 100G at line rate with 1500 B packets is ~8.33 Mpps -> ~5 W.
	if w := PortDynamicWatts(8.33e6, 1500); math.Abs(w-5) > 0.05 {
		t.Errorf("line-rate 100G port = %v W, want ~5", w)
	}
}

func TestPowerSourceUsesLoadFunc(t *testing.T) {
	s := NewTofino()
	if s.PowerWatts(0) != s.Power(0) {
		t.Error("default load should be 0")
	}
	s.SetLoadFunc(func() float64 { return 0.5 })
	if s.PowerWatts(0) != s.Power(0.5) {
		t.Error("PowerWatts should consult the load func")
	}
}

// Property: power is monotone in load for every program, and overhead
// ordering diag > p4xos > l2fwd holds at any positive load.
func TestSwitchPowerProperty(t *testing.T) {
	f := func(l8 uint8) bool {
		load := float64(l8) / 255
		base, p4, diag := NewTofino(), NewTofino(), NewTofino()
		p4.Load(P4xosL2Fwd)
		diag.Load(DiagP4)
		pb, pp, pd := base.Power(load), p4.Power(load), diag.Power(load)
		if load == 0 {
			return pb == pp && pp == pd
		}
		return pb <= pp && pp <= pd && base.Power(load/2) <= pb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
