package scenario

import (
	"strings"
	"testing"
)

func TestParseValidation(t *testing.T) {
	cases := []struct {
		json string
		ok   bool
	}{
		{`{"app":"kvs","profile":[{"duration_s":1,"kpps":10}]}`, true},
		{`{"app":"nope","profile":[{"duration_s":1,"kpps":10}]}`, false},
		{`{"app":"kvs","profile":[]}`, false},
		{`{"app":"kvs","profile":[{"duration_s":-1,"kpps":10}]}`, false},
		{`{"app":"kvs","controller":"magic","profile":[{"duration_s":1,"kpps":1}]}`, false},
		{`{"app":"kvs","strategy":"bogus","profile":[{"duration_s":1,"kpps":1}]}`, false},
		{`{"app":"kvs","policy":"threshold","profile":[{"duration_s":1,"kpps":1}]}`, true},
		{`{"app":"kvs","policy":"quantum","profile":[{"duration_s":1,"kpps":1}]}`, false},
		{`{"app":"kvs","policy":"threshold","controller":"host","profile":[{"duration_s":1,"kpps":1}]}`, false},
		{`{"app":"kvs","policy":"threshold","controller":"none","profile":[{"duration_s":1,"kpps":1}]}`, true},
		{`not json`, false},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.json))
		if (err == nil) != tc.ok {
			t.Errorf("Parse(%s) err = %v, ok = %v", tc.json, err, tc.ok)
		}
	}
}

func TestParseDefaults(t *testing.T) {
	s, err := Parse([]byte(`{"app":"dns","profile":[{"duration_s":1,"kpps":10}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 1 || s.SampleMs != 500 || s.Keys != 1000 || s.CrossoverKpps != 150 {
		t.Errorf("defaults = %+v", s)
	}
}

func TestRunKVSWithNetworkController(t *testing.T) {
	res, err := Run(Scenario{
		App:        "kvs",
		Controller: "network",
		SampleMs:   500,
		Keys:       200,
		Profile: []Segment{
			{DurationS: 2, Kpps: 10},
			{DurationS: 4, Kpps: 200},
			{DurationS: 4, Kpps: 10},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 20 {
		t.Fatalf("samples = %d, want 20", len(res.Samples))
	}
	// The controller must shift out under the 200 kpps plateau and back.
	if len(res.Transitions) < 2 {
		t.Fatalf("transitions = %v, want out and back", res.Transitions)
	}
	sawNetwork := false
	for _, s := range res.Samples {
		if s.Placement == "network" {
			sawNetwork = true
		}
	}
	if !sawNetwork {
		t.Error("timeline never shows the network placement")
	}
	if res.Samples[len(res.Samples)-1].Placement != "host" {
		t.Error("should end back on the host")
	}
	if res.ServedFrac < 0.95 {
		t.Errorf("served fraction = %v, want ~1", res.ServedFrac)
	}
	if res.TotalKWh <= 0 {
		t.Error("no energy accounted")
	}
}

func TestRunDNSStatic(t *testing.T) {
	res, err := Run(Scenario{
		App:   "dns",
		Start: "network",
		Keys:  50,
		Profile: []Segment{
			{DurationS: 2, Kpps: 50},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		if s.Placement != "network" {
			t.Fatalf("static network placement drifted: %+v", s)
		}
	}
	// Hardware latency class.
	last := res.Samples[len(res.Samples)-1]
	if last.P50Us > 5 {
		t.Errorf("p50 = %vµs, want hardware class", last.P50Us)
	}
}

func TestRunPaxos(t *testing.T) {
	res, err := Run(Scenario{
		App:        "paxos",
		Controller: "network",
		// Threshold low so the 8 kpps plateau triggers a leader shift.
		CrossoverKpps: 3,
		Profile: []Segment{
			{DurationS: 2, Kpps: 1},
			{DurationS: 4, Kpps: 8},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transitions) == 0 {
		t.Fatal("paxos leader never shifted")
	}
	if res.Samples[len(res.Samples)-1].Placement != "network" {
		t.Error("leader should end in the network")
	}
	if res.ServedFrac < 0.9 {
		t.Errorf("served = %v", res.ServedFrac)
	}
}

// A named policy drives the same decision code as the controller field:
// "threshold" reproduces the network-controlled shift, "static-network"
// pins the service in hardware regardless of load.
func TestRunWithNamedPolicy(t *testing.T) {
	res, err := Run(Scenario{
		App:    "kvs",
		Policy: "threshold",
		Keys:   200,
		Profile: []Segment{
			{DurationS: 2, Kpps: 10},
			{DurationS: 4, Kpps: 200},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transitions) == 0 {
		t.Fatal("threshold policy never shifted")
	}
	if res.Samples[len(res.Samples)-1].Placement != "network" {
		t.Error("should end offloaded under sustained load")
	}

	res, err = Run(Scenario{
		App:    "kvs",
		Policy: "static-network",
		Keys:   50,
		Profile: []Segment{
			{DurationS: 2, Kpps: 5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		if s.Placement != "network" {
			t.Fatalf("static-network policy drifted: %+v", s)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	res := &Result{
		Samples:     []Sample{{TMs: 500, Offered: 10, Served: 9.5, P50Us: 14, PowerW: 41.2, Placement: "host"}},
		Transitions: []string{"1s -> network (x)"},
		TotalKWh:    0.001,
		ServedFrac:  0.99,
	}
	out := res.CSV()
	for _, want := range []string{"t_ms,offered_kpps", "500,10,9.5,14,41.2,host", "# transition: 1s -> network", "served 99.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}
