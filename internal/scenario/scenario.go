// Package scenario runs user-defined what-if simulations: a JSON scenario
// picks an application (kvs/dns/paxos), an on-demand controller
// (host/network/none), an idle strategy and an offered-load profile; the
// runner executes it in virtual time and emits a timeline (throughput,
// latency, power, placement) plus the controller's transition log. It is
// the front door for exploring the paper's design space beyond the
// figures the harness reproduces.
package scenario

import (
	"encoding/json"
	"fmt"
	"time"

	"incod/internal/core"
	"incod/internal/dns"
	"incod/internal/kvs"
	"incod/internal/paxos"
	"incod/internal/power"
	"incod/internal/simnet"
	"incod/internal/telemetry"
	"incod/internal/trafficgen"
)

// Scenario is the JSON input.
type Scenario struct {
	// App: "kvs", "dns" or "paxos".
	App string `json:"app"`
	// Controller: "network" (rate thresholds), "host" (power+CPU), or
	// "none" (static placement per Start).
	Controller string `json:"controller"`
	// Policy selects a named core placement policy (threshold, power,
	// static-host, static-network) instead of Controller; both the
	// sim-time controller here and the live daemons run the same policy
	// code.
	Policy string `json:"policy"`
	// Start placement: "host" (default) or "network".
	Start string `json:"start"`
	// CrossoverKpps seeds the controller thresholds (defaults per app).
	CrossoverKpps float64 `json:"crossover_kpps"`
	// Strategy (kvs only): "park-reset", "keep-warm", "partial-reconfig".
	Strategy string `json:"strategy"`
	// Seed for the deterministic simulator. Default 1.
	Seed int64 `json:"seed"`
	// SampleMs is the timeline sampling period. Default 500.
	SampleMs int `json:"sample_ms"`
	// Profile is the offered-load schedule.
	Profile []Segment `json:"profile"`
	// Keys is the KVS/DNS key-space size. Default 1000.
	Keys int `json:"keys"`
}

// Segment is one profile step.
type Segment struct {
	DurationS float64 `json:"duration_s"`
	Kpps      float64 `json:"kpps"`
}

// Sample is one timeline row.
type Sample struct {
	TMs       float64 `json:"t_ms"`
	Offered   float64 `json:"offered_kpps"`
	Served    float64 `json:"served_kpps"`
	P50Us     float64 `json:"p50_us"`
	PowerW    float64 `json:"power_w"`
	Placement string  `json:"placement"`
}

// Result is the runner's output.
type Result struct {
	Samples     []Sample `json:"samples"`
	Transitions []string `json:"transitions"`
	TotalKWh    float64  `json:"total_kwh"`
	ServedFrac  float64  `json:"served_frac"`
}

// Parse decodes and validates a JSON scenario.
func Parse(data []byte) (Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return Scenario{}, fmt.Errorf("scenario: %w", err)
	}
	return s, s.validate()
}

func (s *Scenario) validate() error {
	switch s.App {
	case "kvs", "dns", "paxos":
	default:
		return fmt.Errorf("scenario: app must be kvs, dns or paxos (got %q)", s.App)
	}
	switch s.Controller {
	case "", "none", "network", "host":
	default:
		return fmt.Errorf("scenario: controller must be network, host or none (got %q)", s.Controller)
	}
	if s.Policy != "" {
		if _, err := core.PolicyByName(s.Policy, 1); err != nil {
			return err
		}
		if s.Controller != "" && s.Controller != "none" {
			return fmt.Errorf("scenario: policy %q conflicts with controller %q; set one", s.Policy, s.Controller)
		}
	}
	switch s.Strategy {
	case "", "park-reset", "keep-warm", "partial-reconfig":
	default:
		return fmt.Errorf("scenario: unknown strategy %q", s.Strategy)
	}
	if len(s.Profile) == 0 {
		return fmt.Errorf("scenario: empty load profile")
	}
	for i, seg := range s.Profile {
		if seg.DurationS <= 0 || seg.Kpps < 0 {
			return fmt.Errorf("scenario: profile[%d] invalid", i)
		}
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.SampleMs <= 0 {
		s.SampleMs = 500
	}
	if s.Keys <= 0 {
		s.Keys = 1000
	}
	if s.CrossoverKpps <= 0 {
		switch s.App {
		case "kvs":
			s.CrossoverKpps = 80
		default:
			s.CrossoverKpps = 150
		}
	}
	return nil
}

// rig abstracts the per-app wiring the runner needs.
type rig struct {
	svc      core.Service
	power    telemetry.PowerSource
	rateKpps func() float64 // device-observed application rate
	hostTele func() (watts, cpu float64)
	setRate  func(kpps float64)
	served   func() uint64
	p50      func() time.Duration // and resets
}

// Run executes the scenario.
func Run(s Scenario) (*Result, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	sim := simnet.New(s.Seed)
	net := simnet.NewNetwork(sim, simnet.TenGigE)
	r, err := buildRig(s, sim, net)
	if err != nil {
		return nil, err
	}
	if s.Start == "network" {
		if err := r.svc.Shift(core.Network); err != nil {
			return nil, fmt.Errorf("scenario: start placement: %w", err)
		}
	} else if s.App != "paxos" { // kvs/dns rigs start active; park them
		if err := r.svc.Shift(core.Host); err != nil {
			return nil, fmt.Errorf("scenario: start placement: %w", err)
		}
	}

	res := &Result{}
	// Pick the placement policy: an explicit name, or the paper's two
	// controller designs mapped onto the same policy kernels. Policies
	// are curve-calibrated to the app, as in daemon.StartControlPlane.
	polName := s.Policy
	if polName == "" {
		switch s.Controller {
		case "network":
			polName = "threshold"
		case "host":
			polName = "power"
		}
	}
	var pol core.Policy
	if polName != "" {
		var err error
		if pol, err = core.CalibratedPolicyByName(polName, s.CrossoverKpps, appCurve(s.App)); err != nil {
			return nil, err
		}
	}
	var ctlTransitions *[]core.Transition
	if pol != nil {
		ctl := core.NewController(sim, r.svc, pol, core.Monitors{
			RateKpps:   r.rateKpps,
			PowerWatts: func() float64 { w, _ := r.hostTele(); return w },
			CPUUtil:    func() float64 { _, c := r.hostTele(); return c },
		}, 100*time.Millisecond)
		ctl.Start()
		ctlTransitions = &ctl.Transitions
	}

	// Schedule the load profile.
	profile := make(trafficgen.Profile, len(s.Profile))
	for i, seg := range s.Profile {
		profile[i] = trafficgen.Segment{
			Duration: time.Duration(seg.DurationS * float64(time.Second)),
			Kpps:     seg.Kpps,
		}
	}
	profile.Apply(sim, r.setRate)

	meter := telemetry.NewPowerMeter(sim, r.power, 10*time.Millisecond, false)
	interval := time.Duration(s.SampleMs) * time.Millisecond
	total := profile.Total()
	var lastServed uint64
	var offeredTotal float64
	for t := time.Duration(0); t < total; t += interval {
		sim.RunFor(interval)
		served := r.served()
		offered := profile.RateAt(t)
		offeredTotal += offered * 1000 * interval.Seconds()
		res.Samples = append(res.Samples, Sample{
			TMs:       sim.Now().Seconds() * 1000,
			Offered:   offered,
			Served:    float64(served-lastServed) / interval.Seconds() / 1000,
			P50Us:     float64(r.p50()) / 1000,
			PowerW:    r.power.PowerWatts(sim.Now()),
			Placement: r.svc.Placement().String(),
		})
		lastServed = served
	}
	r.setRate(0)
	sim.RunFor(200 * time.Millisecond)

	res.TotalKWh = meter.Joules() / 3.6e6
	if offeredTotal > 0 {
		res.ServedFrac = float64(r.served()) / offeredTotal
	}
	if ctlTransitions != nil {
		for _, tr := range *ctlTransitions {
			res.Transitions = append(res.Transitions, tr.String())
		}
	}
	return res, nil
}

// appCurve is the calibrated §4 software power curve for an application.
func appCurve(app string) power.SoftwareCurve {
	switch app {
	case "dns":
		return power.NSDServer
	case "paxos":
		return power.LibpaxosLeader
	}
	return power.MemcachedMellanox
}

func buildRig(s Scenario, sim *simnet.Simulator, net *simnet.Network) (*rig, error) {
	switch s.App {
	case "kvs":
		backend := kvs.NewSoftServer(net, "host", power.MemcachedMellanox)
		lake := kvs.NewLaKe(net, "lake", backend)
		switch s.Strategy {
		case "keep-warm":
			lake.Strategy = kvs.KeepWarm
		case "partial-reconfig":
			lake.Strategy = kvs.PartialReconfig
		}
		client := kvs.NewClient(net, "client", "lake")
		etc := trafficgen.NewETC(sim.Rand(), uint64(s.Keys))
		for i := 0; i < s.Keys; i++ {
			backend.Store().Set(fmt.Sprintf("key-%d", i), kvs.Entry{Value: make([]byte, 64)})
		}
		client.KeyFunc = etc.Keys.Next
		return &rig{
			svc:      core.NewKVSService(lake),
			power:    telemetry.SumPower{backend, lake},
			rateKpps: lake.RateKpps,
			hostTele: func() (float64, float64) { return backend.PowerWatts(sim.Now()), backend.Utilization() },
			setRate:  func(kpps float64) { client.Stop(); client.Start(kpps) },
			served:   func() uint64 { return client.Counters.Get("recv") },
			p50: func() time.Duration {
				d := client.Latency.Median()
				client.Latency.Reset()
				return d
			},
		}, nil
	case "dns":
		zone := dns.NewZone()
		zone.PopulateSequential(s.Keys)
		backend := dns.NewSoftServer(net, "host", zone)
		emu := dns.NewEmuDNS(net, "emu", backend)
		client := dns.NewClient(net, "client", "emu")
		keys := trafficgen.NewZipfKeys(sim.Rand(), uint64(s.Keys), 1.1)
		client.NameFunc = func() string { return dns.SequentialName(int(keys.NextIndex())) }
		return &rig{
			svc:      core.NewDNSService(emu),
			power:    telemetry.SumPower{backend, emu},
			rateKpps: emu.RateKpps,
			hostTele: func() (float64, float64) { return backend.PowerWatts(sim.Now()), backend.Utilization() },
			setRate:  func(kpps float64) { client.Stop(); client.Start(kpps) },
			served:   func() uint64 { return client.Counters.Get("recv") },
			p50: func() time.Duration {
				d := client.Latency.Median()
				client.Latency.Reset()
				return d
			},
		}, nil
	case "paxos":
		dep := paxos.NewDeployment(net, paxos.Config{})
		c := dep.Clients[0]
		return &rig{
			svc:      core.NewPaxosService(dep),
			power:    dep.PowerSource(),
			rateKpps: func() float64 { return dep.CurrentLeader().RateKpps() },
			hostTele: func() (float64, float64) {
				w := dep.SWLeader.PowerWatts(sim.Now())
				return w, dep.SWLeader.RateKpps() / 170
			},
			setRate: func(kpps float64) { c.Stop(); c.Start(kpps) },
			served:  func() uint64 { return c.Counters.Get("decided") },
			p50: func() time.Duration {
				d := c.Latency.Median()
				c.Latency.Reset()
				return d
			},
		}, nil
	}
	return nil, fmt.Errorf("scenario: unknown app %q", s.App)
}

// CSV renders the result timeline.
func (r *Result) CSV() string {
	out := "t_ms,offered_kpps,served_kpps,p50_us,power_w,placement\n"
	for _, s := range r.Samples {
		out += fmt.Sprintf("%.0f,%.3g,%.3g,%.3g,%.4g,%s\n",
			s.TMs, s.Offered, s.Served, s.P50Us, s.PowerW, s.Placement)
	}
	for _, tr := range r.Transitions {
		out += fmt.Sprintf("# transition: %s\n", tr)
	}
	out += fmt.Sprintf("# total %.4g kWh, served %.1f%% of offered\n", r.TotalKWh, r.ServedFrac*100)
	return out
}
