module incod

go 1.24
