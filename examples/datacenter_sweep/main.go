// datacenter_sweep runs the paper's analytical sweeps in one shot: the
// Figure 5 on-demand envelopes, the §4/§8 crossover table, the §9.3 trace
// analyses and the §9.4 top-of-rack arithmetic. It is the "which of my
// services should move into the network, and when?" tool.
//
// Run: go run ./examples/datacenter_sweep
package main

import (
	"fmt"

	"incod/internal/cluster"
	"incod/internal/experiments"
	"incod/internal/power"
)

func main() {
	for _, id := range []string{"crossover", "fig5", "tor", "dynamo", "google"} {
		e, ok := experiments.ByID(id)
		if !ok {
			panic("missing experiment " + id)
		}
		fmt.Println(e.Run().Render())
	}

	// A bespoke what-if: how much does one server save per day if its KVS
	// tier runs on demand instead of always-in-software?
	d := experiments.DemandCurves()["kvs"]
	trace := cluster.DiurnalLoad(20, 500)
	swKWh, odKWh, saved := cluster.DaySaving(trace, d.SW, d.Power)
	shifts := cluster.ShiftCount(trace, d.CrossKpps*1.1, d.CrossKpps*0.7)
	fmt.Printf("diurnal KVS day: software %.2f kWh vs on-demand %.2f kWh (%.0f%% saved, %d shifts)\n",
		swKWh, odKWh, saved*100, shifts)

	saving := cluster.LastJobSaving(power.XeonE52660v4Dual, 0.5, 10)
	fmt.Printf("offloading the last job from a Xeon host saves %.1f W (§9.3 usage model)\n", saving)
}
