// paxos_leadershift reproduces Figure 7: a Paxos deployment whose leader
// shifts from software to a P4xos hardware pipeline and back, with
// closed-loop clients. Watch the ~100ms stall (the client timeout), the
// throughput increase and the latency halving.
//
// Run: go run ./examples/paxos_leadershift
package main

import (
	"fmt"
	"log"
	"time"

	"incod/internal/core"
	"incod/internal/paxos"
	"incod/internal/simnet"
)

func main() {
	sim := simnet.New(99)
	net := simnet.NewNetwork(sim, simnet.TenGigE)
	dep := paxos.NewDeployment(net, paxos.Config{NumClients: 4})
	for _, c := range dep.Clients {
		c.RetryTimeout = 100 * time.Millisecond
	}

	// Drive the shift through the Service abstraction: the leader
	// election is the §9.2 transition task and can fail.
	svc := core.NewPaxosService(dep)
	shift := func(to core.Placement) func() {
		return func() {
			cost := svc.TransitionCost(to)
			if err := svc.Shift(to); err != nil {
				log.Printf("shift to %s failed: %v", to, err)
				return
			}
			fmt.Printf("# shift to %s (%s)\n", to, cost.Note)
		}
	}
	sim.Schedule(1500*time.Millisecond, shift(core.Network))
	sim.Schedule(3500*time.Millisecond, shift(core.Host))

	for _, c := range dep.Clients {
		c.StartClosedLoop(1)
	}

	fmt.Println("t[ms]  throughput[kpps]  p50-latency  leader")
	var last uint64
	for t := 0; t < 50; t++ {
		sim.RunFor(100 * time.Millisecond)
		decided := dep.Learner.Counters.Get("decided")
		med := dep.Clients[0].Latency.Median()
		dep.Clients[0].Latency.Reset()
		leader := "software"
		if dep.CurrentLeader() == dep.HWLeader {
			leader = "hardware"
		}
		// kpps over the 100 ms interval.
		fmt.Printf("%5d  %16.1f  %11v  %s\n",
			(t+1)*100, float64(decided-last)/100, med, leader)
		last = decided
	}
	for _, c := range dep.Clients {
		c.Stop()
	}
	sim.RunFor(time.Second)
	fmt.Printf("\ndecided instances: %d, remaining gaps: %d, no-op fills: %d\n",
		dep.Learner.DecidedCount(), len(dep.Learner.Gaps()), dep.Learner.Counters.Get("noop"))
}
