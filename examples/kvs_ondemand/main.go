// kvs_ondemand reproduces the Figure 6 scenario interactively: an ETC
// memcached workload served in software, a background job (ChainerMN)
// heating up the host, and the §9.1 host controller shifting the KVS onto
// the LaKe card — then back when the background job ends.
//
// Run: go run ./examples/kvs_ondemand
package main

import (
	"fmt"
	"time"

	"incod/internal/core"
	"incod/internal/kvs"
	"incod/internal/power"
	"incod/internal/simnet"
	"incod/internal/telemetry"
	"incod/internal/trafficgen"
)

func main() {
	sim := simnet.New(7)
	net := simnet.NewNetwork(sim, simnet.TenGigE)
	host := kvs.NewSoftServer(net, "host", power.MemcachedMellanox)
	lake := kvs.NewLaKe(net, "lake", host)
	lake.Deactivate() // day starts in software
	client := kvs.NewClient(net, "client", "lake")

	etc := trafficgen.NewETC(sim.Rand(), 2000)
	for i := 0; i < 2000; i++ {
		host.Store().Set(fmt.Sprintf("key-%d", i), kvs.Entry{Value: make([]byte, 64)})
	}
	client.KeyFunc = etc.Keys.Next

	// Background training job between t=4s and t=14s.
	bgOn := false
	sim.Schedule(4*time.Second, func() { bgOn = true })
	sim.Schedule(14*time.Second, func() { bgOn = false })
	bgPower := func() float64 {
		if bgOn {
			return 45
		}
		return 0
	}

	svc := core.NewKVSService(lake)
	ctl := core.NewHostController(sim, svc,
		func() float64 { return host.PowerWatts(sim.Now()) + bgPower() },
		func() float64 {
			u := host.Utilization()
			if bgOn {
				u += 0.8
			}
			return u
		},
		lake.RateKpps,
		core.HostControllerConfig{
			ToNetworkPowerWatts: 70, ToNetworkCPUUtil: 0.5,
			ToNetworkSustain: 3 * time.Second,
			// Rate-based return disabled (0 never fires): the §9.2
			// experiment shifts back "as ChainerMN stops", below.
			ToHostKpps: 0, ToHostSustain: 3 * time.Second,
			SamplePeriod: 100 * time.Millisecond,
		})
	ctl.Start()
	// Shift back once the background job has been gone for 3s.
	var quietSince simnet.Time
	sim.Every(100*time.Millisecond, func() {
		if svc.Placement() == core.Network && !bgOn {
			if quietSince == 0 {
				quietSince = sim.Now()
			} else if sim.Now().Sub(quietSince) >= 3*time.Second {
				if err := svc.Shift(core.Host); err == nil {
					ctl.Transitions = append(ctl.Transitions, core.Transition{
						At: sim.Now(), To: core.Host, Reason: "background workload stopped"})
				}
				quietSince = 0
			}
		} else {
			quietSince = 0
		}
	})

	combined := telemetry.SumPower{host, lake,
		telemetry.PowerSourceFunc(func(simnet.Time) float64 { return bgPower() })}

	client.Start(16)
	fmt.Println("t[s]  throughput[kpps]  p50-latency  power[W]  placement")
	var lastRecv uint64
	for t := 0; t < 20; t++ {
		sim.RunFor(time.Second)
		recv := client.Counters.Get("recv")
		med := client.Latency.Median()
		client.Latency.Reset()
		fmt.Printf("%4d  %16.1f  %11v  %8.1f  %s\n",
			t+1, float64(recv-lastRecv)/1000, med,
			combined.PowerWatts(sim.Now()), svc.Placement())
		lastRecv = recv
	}
	client.Stop()

	fmt.Println("\ncontroller transitions:")
	for _, tr := range ctl.Transitions {
		fmt.Printf("  %s\n", tr)
	}
	fmt.Printf("RAPL reads by controller: %d\n", ctl.RAPLReads())
}
