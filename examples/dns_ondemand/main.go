// dns_ondemand runs the DNS case study under the network-controlled
// on-demand policy: a query ramp crosses the software/hardware power
// crossover, the classifier's controller shifts resolution into the Emu
// DNS pipeline (syncing the on-chip zone), and shifts back as load fades.
//
// Run: go run ./examples/dns_ondemand
package main

import (
	"fmt"
	"time"

	"incod/internal/core"
	"incod/internal/dns"
	"incod/internal/simnet"
	"incod/internal/telemetry"
	"incod/internal/trafficgen"
)

func main() {
	sim := simnet.New(5)
	net := simnet.NewNetwork(sim, simnet.TenGigE)
	zone := dns.NewZone()
	zone.PopulateSequential(1000)
	host := dns.NewSoftServer(net, "host", zone)
	emu := dns.NewEmuDNS(net, "emu", host)
	emu.Deactivate()
	client := dns.NewClient(net, "client", "emu")
	keys := trafficgen.NewZipfKeys(sim.Rand(), 1000, 1.1)
	client.NameFunc = func() string { return dns.SequentialName(int(keys.NextIndex())) }

	svc := core.NewDNSService(emu)
	ctl := core.NewNetworkController(sim, svc, emu.RateKpps, core.DefaultNetworkConfig(150))
	ctl.Start()

	combined := telemetry.SumPower{host, emu}

	// Ramp up 20 -> 400 kpps, hold, ramp down.
	profile := trafficgen.Profile{
		{Duration: 3 * time.Second, Kpps: 20},
		{Duration: 5 * time.Second, Kpps: 400},
		{Duration: 6 * time.Second, Kpps: 20},
	}
	profile.Apply(sim, func(kpps float64) { client.Stop(); client.Start(kpps) })

	fmt.Println("t[s]  rate[kpps]  p50-latency  power[W]  placement")
	var last uint64
	for t := 0; t < 14; t++ {
		sim.RunFor(time.Second)
		recv := client.Counters.Get("recv")
		med := client.Latency.Median()
		client.Latency.Reset()
		fmt.Printf("%4d  %10.1f  %11v  %8.1f  %s\n",
			t+1, float64(recv-last)/1000, med, combined.PowerWatts(sim.Now()), svc.Placement())
		last = recv
	}
	client.Stop()
	fmt.Println("\ncontroller transitions:")
	for _, tr := range ctl.Transitions {
		fmt.Printf("  %s\n", tr)
	}
}
