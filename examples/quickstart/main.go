// Quickstart: build the smallest complete in-network-computing-on-demand
// system — a memcached client, a LaKe card, and the host software behind
// it — drive some load in virtual time, and print the power and latency
// numbers that motivate the paper.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"incod/internal/kvs"
	"incod/internal/power"
	"incod/internal/simnet"
	"incod/internal/telemetry"
)

func main() {
	sim := simnet.New(42)
	net := simnet.NewNetwork(sim, simnet.TenGigE)

	// Host software (memcached-style) behind a LaKe FPGA NIC.
	host := kvs.NewSoftServer(net, "host", power.MemcachedMellanox)
	lake := kvs.NewLaKe(net, "lake", host)
	client := kvs.NewClient(net, "client", "lake")

	// A small working set the cache can hold.
	for i := 0; i < 100; i++ {
		host.Store().Set(fmt.Sprintf("key-%d", i), kvs.Entry{Value: []byte("value")})
	}
	i := 0
	client.KeyFunc = func() string { i++; return fmt.Sprintf("key-%d", i%100) }

	// Measure combined wall power like the paper's SHW-3A meter.
	combined := telemetry.SumPower{host, lake}
	meter := telemetry.NewPowerMeter(sim, combined, 10*time.Millisecond, false)

	fmt.Println("driving 200 kpps of memcached GETs through LaKe for 2s of virtual time...")
	client.Start(200)
	sim.RunFor(2 * time.Second)
	client.Stop()
	sim.RunFor(10 * time.Millisecond)

	fmt.Printf("  queries answered:    %d (hit ratio %.1f%%)\n",
		client.Counters.Get("recv"), lake.HitRatio()*100)
	fmt.Printf("  hit latency:         p50=%v p99=%v (software path: p50=%v)\n",
		lake.HitLatency.Median(), lake.HitLatency.P99(), lake.MissLatency.Median())
	fmt.Printf("  combined wall power: %.1f W average\n", meter.AverageWatts())
	fmt.Printf("  pure software would: %.1f W at this rate\n", power.MemcachedMellanox.Power(200))
	fmt.Printf("  crossover:           hardware wins above ~%.0f kpps (paper: ~80)\n",
		power.Crossover(power.MemcachedMellanox.Power,
			func(float64) float64 { return combined.PowerWatts(sim.Now()) }, 2000))
}
