// Command incloadgen drives real-UDP load against inckvsd, incdnsd or an
// incpaxosd acceptor — a software stand-in for the paper's OSNT traffic
// generator: open-loop paced load, Zipf key popularity, and client-side
// achieved-rate and latency reporting, so the 1-shard vs N-shard
// dataplane speedup is measurable from the CLI.
//
//	incloadgen -proto kvs -target localhost:11211 -rate 50000 -keys 1000 -duration 5s
//	incloadgen -proto dns -target localhost:5353  -rate 20000 -keys 16   -duration 5s
//	incloadgen -proto paxos -target localhost:7000 -rate 20000 -duration 5s
//
// A phased profile exercises shift-up and shift-down in one run — ramp
// across the placement threshold, hold above it, drop back under it —
// with the achieved rate reported per phase:
//
//	incloadgen -proto kvs -target localhost:11211 \
//	    -profile 'ramp:0-100000:5s,hold:100000:5s,spike:150000:1s,ramp:100000-0:5s'
//
// The pacer is open-loop (it does not wait for replies), sending in
// batches every millisecond, so the offered rate holds even when the
// server lags; the report then shows how much of it was answered:
//
//	incloadgen: offered 50000 req/s for 5s
//	incloadgen: sent 250000 (50.0 kpps), answered 249875 (50.0 kpps, 99.9%), bad 0
//	incloadgen: latency p50=212µs p99=1.1ms max=3.2ms
//
// Worker mode for fleet controllers: -report <path> writes the final
// achieved/answered/latency/error numbers as JSON on exit (even when the
// run aborts — the error is recorded in the report), -quiet suppresses
// the per-phase chatter, and the exit code is nonzero whenever socket
// setup or a mid-run send fails, so an orchestrating process never
// mistakes a dead generator for an idle one.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"incod/internal/dns"
	"incod/internal/memcache"
	"incod/internal/netio"
	"incod/internal/paxos"
	"incod/internal/telemetry"
	"incod/internal/trafficgen"
)

// RunReport is the machine-readable end-of-run summary behind -report.
// Fleet controllers parse it to verify the offered load arrived and to
// count wrong answers (Bad: replies that failed to decode).
type RunReport struct {
	Proto  string `json:"proto"`
	Target string `json:"target"`
	Phases int    `json:"phases"`

	Sent        uint64 `json:"sent"`
	Answered    uint64 `json:"answered"`
	Bad         uint64 `json:"bad"`
	Outstanding int    `json:"outstanding"`

	SendSeconds  float64 `json:"send_seconds"`
	AchievedKpps float64 `json:"achieved_kpps"`
	AnsweredKpps float64 `json:"answered_kpps"`

	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	MaxMicros float64 `json:"max_us"`

	// Error is non-empty when the run aborted (socket setup or a mid-run
	// send failure); the process also exits nonzero.
	Error string `json:"error,omitempty"`
}

func main() {
	proto := flag.String("proto", "kvs", "protocol: kvs | dns | paxos (Phase2A votes against an acceptor)")
	target := flag.String("target", "localhost:11211", "server address")
	rate := flag.Float64("rate", 1000, "offered requests per second")
	duration := flag.Duration("duration", 5*time.Second, "run duration")
	keys := flag.Uint64("keys", 1000, "key-space size (Zipf popularity)")
	preload := flag.Bool("preload", true, "kvs: SET every key before the run")
	sockets := flag.Int("sockets", 1,
		"client sockets (distinct source ports, so a reuseport server spreads the flows)")
	rxBatch := flag.Int("rxbatch", 32, "replies read per recvmmsg batch")
	txBatch := flag.Int("txbatch", 32, "requests sent per sendmmsg batch")
	profile := flag.String("profile", "",
		"phased load, comma-separated: ramp:<from>-<to>:<dur> | hold:<rate>:<dur> | spike:<rate>:<dur>; overrides -rate/-duration")
	engine := flag.String("engine", "",
		"client transport: \"\" auto (recvmmsg/sendmmsg on linux) | uring (io_uring rings) | single (portable fallback)")
	fast := flag.Bool("fast", false,
		"saturating fast-send mode: pre-encoded request images blasted open-loop from one worker per socket for -duration; ignores -rate/-profile, samples latency 1/64")
	gsoTx := flag.Bool("gsotx", false,
		"fast mode: pack runs of equal-size request images into UDP_SEGMENT trains, one send per train (degrades to per-datagram sends on kernels without UDP_SEGMENT)")
	reportPath := flag.String("report", "", "write the final run report as JSON to this path on exit")
	quiet := flag.Bool("quiet", false, "suppress per-phase progress logs (final summary still printed)")
	flag.Parse()

	var rep *RunReport
	var err error
	if *fast {
		rep, err = runFast(*proto, *target, *duration, *keys, *preload,
			*sockets, *rxBatch, *txBatch, *engine, *gsoTx, *quiet)
	} else {
		if *gsoTx {
			log.Printf("incloadgen: -gsotx only applies to -fast mode; ignoring")
		}
		rep, err = run(*proto, *target, *rate, *duration, *keys, *preload,
			*sockets, *rxBatch, *txBatch, *profile, *engine, *quiet)
	}
	if err != nil {
		rep.Error = err.Error()
		log.Printf("incloadgen: %v", err)
	}
	if *reportPath != "" {
		if werr := writeReport(*reportPath, rep); werr != nil {
			log.Printf("incloadgen: write report: %v", werr)
			os.Exit(1)
		}
	}
	if err != nil {
		os.Exit(1)
	}
}

func writeReport(path string, rep *RunReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// run drives the whole load session and always returns a report with
// whatever was achieved — on error the caller records it and exits
// nonzero instead of silently reporting 0 kpps.
func run(proto, target string, rate float64, duration time.Duration, keys uint64,
	preload bool, sockets, rxBatch, txBatch int, profile string, engine string, quiet bool) (*RunReport, error) {
	rep := &RunReport{Proto: proto, Target: target}

	phases, err := parseProfile(profile, rate, duration)
	if err != nil {
		return rep, err
	}
	rep.Phases = len(phases)
	if sockets < 1 {
		sockets = 1
	}
	if rxBatch < 1 {
		rxBatch = 1
	}
	if txBatch < 1 {
		txBatch = 1
	}

	// One connected socket per flow: distinct source ports make a
	// reuseport server spread the load across its shard sockets, and
	// every socket gets batched send/recv so the generator can offer
	// more than the server's single-reader mode can absorb.
	conns := make([]net.Conn, sockets)
	bconns := make([]netio.BatchConn, sockets)
	for i := range conns {
		c, err := net.Dial("udp", target)
		if err != nil {
			return rep, fmt.Errorf("dial %s: %w", target, err)
		}
		defer c.Close()
		conns[i] = c
		if bconns[i], err = clientConn(c.(*net.UDPConn), engine); err != nil {
			return rep, err
		}
	}

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	sampler := trafficgen.NewZipfKeys(rng, keys, 1.06)

	// In-flight requests by wire id. All protocols carry a 16-bit
	// correlation id (paxos: the low bits of the instance), so the id
	// space wraps at high rates: an overwritten slot counts the older
	// request as lost, which slightly overstates loss rather than
	// understating latency.
	var mu sync.Mutex
	sent := make(map[uint16]time.Time)
	hist := telemetry.NewHistogram()
	var recv, errs uint64

	// One batched receiver per socket.
	for _, bc := range bconns {
		go func(bc netio.BatchConn) {
			ms := make([]netio.Message, rxBatch)
			for i := range ms {
				ms[i].Buf = make([]byte, 64*1024)
			}
			for {
				n, err := bc.ReadBatch(ms)
				if err != nil {
					return
				}
				now := time.Now()
				mu.Lock()
				for i := 0; i < n; i++ {
					id, ok := responseID(proto, ms[i].Buf[:ms[i].N])
					if !ok {
						errs++
						continue
					}
					if t0, pending := sent[id]; pending {
						delete(sent, id)
						hist.Observe(now.Sub(t0))
						recv++
					}
				}
				mu.Unlock()
			}
		}(bc)
	}

	if proto == "kvs" && preload {
		for i := uint64(0); i < keys; i++ {
			payload := memcache.EncodeFrame(memcache.Frame{RequestID: 0, Total: 1},
				memcache.EncodeRequest(memcache.Request{
					Op: memcache.OpSet, Key: fmt.Sprintf("key-%d", i), Value: []byte("value")}))
			if _, err := conns[i%uint64(len(conns))].Write(payload); err != nil {
				return rep, fmt.Errorf("preload: %w", err)
			}
			if i%256 == 255 {
				time.Sleep(time.Millisecond) // don't outrun the socket buffer
			}
		}
		time.Sleep(200 * time.Millisecond)
		if !quiet {
			log.Printf("incloadgen: preloaded %d keys", keys)
		}
	}

	var totalDur time.Duration
	for _, ph := range phases {
		totalDur += ph.dur
	}
	if !quiet {
		log.Printf("incloadgen: %s load on %s, %d phase(s) over %v (%d sockets, tx batch %d)",
			proto, target, len(phases), totalDur, sockets, txBatch)
	}

	// Open-loop pacer: every tick, send however many requests are due by
	// now per the current phase's rate curve, in sendmmsg batches rotated
	// across the client sockets. Batching decouples the offered rate from
	// timer resolution AND from the per-packet syscall cost, so hundreds
	// of thousands of req/s are reachable from one goroutine.
	var id uint16
	var total uint64
	nextConn := 0
	txq := make([]netio.Message, 0, txBatch)
	flush := func() error {
		if len(txq) == 0 {
			return nil
		}
		if _, err := bconns[nextConn].WriteBatch(txq); err != nil {
			return fmt.Errorf("send on socket %d: %w", nextConn, err)
		}
		nextConn = (nextConn + 1) % len(bconns)
		txq = txq[:0]
		return nil
	}
	finish := func(sendSpan time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		rep.Sent = total
		rep.Answered = recv
		rep.Bad = errs
		rep.Outstanding = len(sent)
		rep.SendSeconds = sendSpan.Seconds()
		if sendSpan > 0 {
			rep.AchievedKpps = float64(total) / sendSpan.Seconds() / 1000
			rep.AnsweredKpps = float64(recv) / sendSpan.Seconds() / 1000
		}
		rep.P50Micros = float64(hist.Median()) / float64(time.Microsecond)
		rep.P99Micros = float64(hist.P99()) / float64(time.Microsecond)
		rep.MaxMicros = float64(hist.Max()) / float64(time.Microsecond)
	}
	const tickEvery = time.Millisecond
	const maxBatch = 4096 // bound catch-up bursts after a stall
	start := time.Now()
	for i, ph := range phases {
		phaseStart := time.Now()
		var phaseSent uint64
		mu.Lock()
		recvAtStart := recv
		mu.Unlock()
		for {
			elapsed := time.Since(phaseStart)
			if elapsed >= ph.dur {
				break
			}
			due := ph.dueAt(elapsed)
			batch := uint64(0)
			for phaseSent < due && batch < maxBatch {
				id++
				total++
				phaseSent++
				batch++
				payload, err := request(proto, id, sampler)
				if err != nil {
					finish(time.Since(start))
					return rep, err
				}
				mu.Lock()
				sent[id] = time.Now()
				mu.Unlock()
				txq = append(txq, netio.Message{Buf: payload, N: len(payload)})
				if len(txq) == txBatch {
					if err := flush(); err != nil {
						finish(time.Since(start))
						return rep, err
					}
				}
			}
			if err := flush(); err != nil {
				finish(time.Since(start))
				return rep, err
			}
			time.Sleep(tickEvery)
		}
		span := time.Since(phaseStart)
		mu.Lock()
		answered := recv - recvAtStart
		mu.Unlock()
		if !quiet {
			log.Printf("incloadgen: phase %d/%d %s: sent %d (achieved %.1f kpps), answered %d in-phase",
				i+1, len(phases), ph, phaseSent, float64(phaseSent)/span.Seconds()/1000, answered)
		}
	}
	sendSpan := time.Since(start)
	time.Sleep(300 * time.Millisecond) // collect stragglers

	finish(sendSpan)
	frac := 0.0
	if rep.Sent > 0 {
		frac = float64(rep.Answered) / float64(rep.Sent) * 100
	}
	log.Printf("incloadgen: sent %d (%.1f kpps), answered %d (%.1f kpps, %.1f%%), outstanding %d, bad %d",
		rep.Sent, rep.AchievedKpps, rep.Answered, rep.AnsweredKpps, frac, rep.Outstanding, rep.Bad)
	log.Printf("incloadgen: latency p50=%v p99=%v max=%v", hist.Median(), hist.P99(), hist.Max())
	return rep, nil
}

// clientConn wraps a connected client socket in the requested transport.
// The uring rings are sized small: replies for all three protocols are
// well under 8 KiB, and a modest provided-buffer ring per socket keeps
// the generator's memory bounded at high socket counts.
func clientConn(c *net.UDPConn, engine string) (netio.BatchConn, error) {
	switch engine {
	case "uring":
		bc, err := netio.NewUringConn(c, netio.UringConfig{Entries: 256, Buffers: 1024, BufSize: 8192})
		if err != nil {
			return nil, fmt.Errorf("uring client socket: %w", err)
		}
		return bc, nil
	case "single":
		return netio.NewSingleConn(c), nil
	case "", "batched", "mmsg":
		return netio.NewBatchConn(c), nil
	}
	return nil, fmt.Errorf("unknown -engine %q (want uring, single or empty)", engine)
}

// fastSampleEvery is the latency sampling stride of the fast-send path:
// 1 in 64 requests gets a timestamp, so latency tracking costs nothing
// measurable at Mpps rates while the percentiles stay statistically
// sound.
const fastSampleEvery = 64

// runFast is the saturating generator: every request image is encoded
// once up front, then one worker per socket blasts WriteBatch calls in
// a tight loop with zero per-request encode, map or clock work. This is
// what it takes to actually saturate the uring server path — the paced
// run() tops out near 300–400 kpps per core on encode + bookkeeping
// long before the server does.
func runFast(proto, target string, duration time.Duration, keys uint64,
	preload bool, sockets, rxBatch, txBatch int, engine string, gsoTx, quiet bool) (*RunReport, error) {
	rep := &RunReport{Proto: proto, Target: target, Phases: 1}
	if sockets < 1 {
		sockets = 1
	}
	if gsoTx {
		if err := netio.ProbeGSO(); err != nil {
			log.Printf("incloadgen: GSO TX unavailable, sending per-datagram: %v", err)
			gsoTx = false
		}
	}
	if rxBatch < 1 {
		rxBatch = 1
	}
	if txBatch < 1 {
		txBatch = 1
	}

	// Pre-encode one request image per wire id. Zipf key popularity is
	// baked into the image set, so replaying the id space reproduces the
	// paced generator's key distribution.
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	sampler := trafficgen.NewZipfKeys(rng, keys, 1.06)
	const idSpace = 1 << 16
	images := make([][]byte, idSpace)
	for i := range images {
		img, err := request(proto, uint16(i), sampler)
		if err != nil {
			return rep, err
		}
		images[i] = img
	}

	type fastWorker struct {
		conn net.Conn
		bc   netio.BatchConn

		sent, recv, bad uint64 // owned counters, collected after the run

		mu      sync.Mutex
		pending map[uint16]time.Time // sampled in-flight ids
	}
	workers := make([]*fastWorker, sockets)
	for i := range workers {
		c, err := net.Dial("udp", target)
		if err != nil {
			return rep, fmt.Errorf("dial %s: %w", target, err)
		}
		defer c.Close()
		bc, err := clientConn(c.(*net.UDPConn), engine)
		if err != nil {
			return rep, err
		}
		workers[i] = &fastWorker{conn: c, bc: bc, pending: make(map[uint16]time.Time)}
	}

	if proto == "kvs" && preload {
		if err := preloadKVS(workers[0].conn, keys); err != nil {
			return rep, err
		}
		if !quiet {
			log.Printf("incloadgen: preloaded %d keys", keys)
		}
	}
	if !quiet {
		log.Printf("incloadgen: fast %s load on %s for %v (%d worker(s), tx batch %d, engine %q)",
			proto, target, duration, sockets, txBatch, engine)
	}

	hist := telemetry.NewHistogram()
	var histMu sync.Mutex
	var recvWG sync.WaitGroup
	for _, w := range workers {
		recvWG.Add(1)
		go func(w *fastWorker) {
			defer recvWG.Done()
			ms := make([]netio.Message, rxBatch)
			for i := range ms {
				ms[i].Buf = make([]byte, 8192)
			}
			for {
				n, err := w.bc.ReadBatch(ms)
				if err != nil {
					return
				}
				now := time.Now()
				for i := 0; i < n; i++ {
					id, ok := responseID(proto, ms[i].Buf[:ms[i].N])
					if !ok {
						w.bad++
						continue
					}
					w.recv++
					if id%fastSampleEvery != 0 {
						continue
					}
					w.mu.Lock()
					t0, pending := w.pending[id]
					if pending {
						delete(w.pending, id)
					}
					w.mu.Unlock()
					if pending {
						histMu.Lock()
						hist.Observe(now.Sub(t0))
						histMu.Unlock()
					}
				}
			}
		}(w)
	}

	// Senders: cycle the image pool, check the clock once per batch.
	start := time.Now()
	deadline := start.Add(duration)
	var sendWG sync.WaitGroup
	errCh := make(chan error, sockets)
	for wi, w := range workers {
		sendWG.Add(1)
		go func(w *fastWorker, off uint64) {
			defer sendWG.Done()
			msgs := make([]netio.Message, txBatch)
			// With -gsotx, runs of equal-size images are copied into these
			// reusable buffers and sent as UDP_SEGMENT trains — at most one
			// train buffer per message slot, since a run never splits.
			var trainBufs [][]byte
			if gsoTx {
				trainBufs = make([][]byte, txBatch)
			}
			idx := off // decorrelate the workers' id phases
			for time.Now().Before(deadline) {
				if gsoTx {
					out := msgs[:0]
					n := 0
					for n < txBatch {
						segSize := len(images[uint16(idx)])
						buf := trainBufs[len(out)][:0]
						segs := 0
						for n < txBatch && segs < netio.MaxTrainSegs {
							id := uint16(idx)
							img := images[id]
							if len(img) != segSize || len(buf)+len(img) > netio.MaxTrainBytes {
								break
							}
							buf = append(buf, img...)
							if id%fastSampleEvery == 0 {
								w.mu.Lock()
								w.pending[id] = time.Now()
								w.mu.Unlock()
							}
							idx++
							n++
							segs++
						}
						trainBufs[len(out)] = buf
						m := netio.Message{Buf: buf, N: len(buf)}
						if segs > 1 {
							m.SegSize = segSize
						}
						out = append(out, m)
					}
					if _, err := w.bc.WriteBatch(out); err != nil {
						errCh <- fmt.Errorf("fast send: %w", err)
						return
					}
					w.sent += uint64(n)
					continue
				}
				for j := range msgs {
					id := uint16(idx)
					img := images[id]
					msgs[j] = netio.Message{Buf: img, N: len(img)}
					if id%fastSampleEvery == 0 {
						w.mu.Lock()
						w.pending[id] = time.Now()
						w.mu.Unlock()
					}
					idx++
				}
				if _, err := w.bc.WriteBatch(msgs); err != nil {
					errCh <- fmt.Errorf("fast send: %w", err)
					return
				}
				w.sent += uint64(txBatch)
			}
		}(w, uint64(wi)*(idSpace/uint64(sockets)))
	}
	sendWG.Wait()
	sendSpan := time.Since(start)
	time.Sleep(300 * time.Millisecond) // collect stragglers
	for _, w := range workers {
		_ = w.bc.Close() // unblocks the receiver
	}
	recvWG.Wait()

	var sendErr error
	select {
	case sendErr = <-errCh:
	default:
	}
	outstanding := 0
	for _, w := range workers {
		rep.Sent += w.sent
		rep.Answered += w.recv
		rep.Bad += w.bad
		outstanding += len(w.pending)
	}
	rep.Outstanding = outstanding * fastSampleEvery // scale the sample back up
	rep.SendSeconds = sendSpan.Seconds()
	if sendSpan > 0 {
		rep.AchievedKpps = float64(rep.Sent) / sendSpan.Seconds() / 1000
		rep.AnsweredKpps = float64(rep.Answered) / sendSpan.Seconds() / 1000
	}
	rep.P50Micros = float64(hist.Median()) / float64(time.Microsecond)
	rep.P99Micros = float64(hist.P99()) / float64(time.Microsecond)
	rep.MaxMicros = float64(hist.Max()) / float64(time.Microsecond)

	frac := 0.0
	if rep.Sent > 0 {
		frac = float64(rep.Answered) / float64(rep.Sent) * 100
	}
	log.Printf("incloadgen: fast sent %d (%.1f kpps), answered %d (%.1f kpps, %.1f%%), bad %d",
		rep.Sent, rep.AchievedKpps, rep.Answered, rep.AnsweredKpps, frac, rep.Bad)
	log.Printf("incloadgen: sampled latency p50=%v p99=%v max=%v", hist.Median(), hist.P99(), hist.Max())
	return rep, sendErr
}

// preloadKVS SETs every key so the fast GET workload hits a warm store.
func preloadKVS(conn net.Conn, keys uint64) error {
	for i := uint64(0); i < keys; i++ {
		payload := memcache.EncodeFrame(memcache.Frame{RequestID: 0, Total: 1},
			memcache.EncodeRequest(memcache.Request{
				Op: memcache.OpSet, Key: fmt.Sprintf("key-%d", i), Value: []byte("value")}))
		if _, err := conn.Write(payload); err != nil {
			return fmt.Errorf("preload: %w", err)
		}
		if i%256 == 255 {
			time.Sleep(time.Millisecond) // don't outrun the socket buffer
		}
	}
	time.Sleep(200 * time.Millisecond)
	return nil
}

// phase is one segment of the offered-load profile.
type phase struct {
	kind     string // "ramp", "hold" or "spike"
	from, to float64
	dur      time.Duration
}

func (p phase) String() string {
	if p.kind == "ramp" {
		return fmt.Sprintf("ramp %.0f->%.0f req/s over %v", p.from, p.to, p.dur)
	}
	return fmt.Sprintf("%s %.0f req/s for %v", p.kind, p.from, p.dur)
}

// dueAt integrates the phase's rate curve: how many requests should have
// been sent t into the phase (linear interpolation for ramps).
func (p phase) dueAt(t time.Duration) uint64 {
	s := t.Seconds()
	if p.kind == "ramp" && p.dur > 0 {
		d := p.dur.Seconds()
		return uint64(p.from*s + (p.to-p.from)*s*s/(2*d))
	}
	return uint64(p.from * s)
}

// parseProfile parses the -profile spec. Empty means a single hold phase
// at the -rate/-duration defaults, preserving the classic behavior.
func parseProfile(spec string, rate float64, dur time.Duration) ([]phase, error) {
	if strings.TrimSpace(spec) == "" {
		return []phase{{kind: "hold", from: rate, to: rate, dur: dur}}, nil
	}
	var out []phase
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("profile phase %q: want <kind>:<rate>:<duration>", part)
		}
		d, err := time.ParseDuration(fields[2])
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("profile phase %q: bad duration %q", part, fields[2])
		}
		p := phase{kind: fields[0], dur: d}
		switch p.kind {
		case "ramp":
			from, to, ok := strings.Cut(fields[1], "-")
			if !ok {
				return nil, fmt.Errorf("profile phase %q: ramp wants <from>-<to>", part)
			}
			if p.from, err = strconv.ParseFloat(from, 64); err != nil {
				return nil, fmt.Errorf("profile phase %q: bad rate %q", part, from)
			}
			if p.to, err = strconv.ParseFloat(to, 64); err != nil {
				return nil, fmt.Errorf("profile phase %q: bad rate %q", part, to)
			}
		case "hold", "spike":
			if p.from, err = strconv.ParseFloat(fields[1], 64); err != nil {
				return nil, fmt.Errorf("profile phase %q: bad rate %q", part, fields[1])
			}
			p.to = p.from
		default:
			return nil, fmt.Errorf("profile phase %q: unknown kind %q (want ramp, hold or spike)", part, p.kind)
		}
		if p.from < 0 || p.to < 0 {
			return nil, fmt.Errorf("profile phase %q: negative rate", part)
		}
		out = append(out, p)
	}
	return out, nil
}

// paxosValue is the fixed command body every generated 2A carries.
var paxosValue = []byte("incloadgen-cmd")

func request(proto string, id uint16, sampler *trafficgen.KeySampler) ([]byte, error) {
	switch proto {
	case "kvs":
		return memcache.EncodeFrame(memcache.Frame{RequestID: id, Total: 1},
			memcache.EncodeRequest(memcache.Request{Op: memcache.OpGet, Key: sampler.Next()})), nil
	case "dns":
		// Mixed-case names exercise the server's case-insensitive fold
		// path; an all-lowercase generator would never hit it and the
		// fold cost would be invisible under load.
		name := mixCase(dns.SequentialName(int(sampler.NextIndex())), uint64(id))
		return dns.Encode(dns.NewQuery(id, name))
	case "paxos":
		// A Phase2A vote request per id: the acceptor replies the 2B to
		// the sender (learner fan-out is separate), and the instance
		// echoes back as the correlation id. Wrapped ids re-vote an
		// accepted instance, which still answers — by the §9.2 rules a
		// re-vote returns the original value, so correlation holds.
		return paxos.Encode(paxos.Msg{
			Type: paxos.MsgPhase2A, Instance: uint64(id), Ballot: 1,
			Value: paxosValue,
		}), nil
	}
	return nil, fmt.Errorf("unknown protocol %q", proto)
}

// mixCase upper-cases a deterministic, id-dependent subset of s's
// letters (an xorshift over the id), so repeated queries for one name
// arrive with varying case like real resolver traffic does.
func mixCase(s string, seed uint64) string {
	x := seed*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	b := []byte(s)
	for i := range b {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if b[i] >= 'a' && b[i] <= 'z' && x&1 != 0 {
			b[i] -= 'a' - 'A'
		}
	}
	return string(b)
}

func responseID(proto string, payload []byte) (uint16, bool) {
	switch proto {
	case "kvs":
		frame, _, err := memcache.DecodeFrame(payload)
		if err != nil {
			return 0, false
		}
		return frame.RequestID, true
	case "dns":
		m, err := dns.Decode(payload, 0)
		if err != nil || !m.Response {
			return 0, false
		}
		return m.ID, true
	case "paxos":
		var v paxos.MsgView
		if paxos.DecodeView(payload, &v) != nil {
			return 0, false
		}
		// 2B is the vote, 1B a ballot refusal — both answer the request
		// for latency purposes and both echo the instance back.
		return uint16(v.Instance), true
	}
	return 0, false
}
