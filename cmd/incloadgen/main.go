// Command incloadgen drives real-UDP load against inckvsd or incdnsd — a
// software stand-in for the paper's OSNT traffic generator: controlled
// rate, Zipf key popularity, and client-side latency percentiles.
//
//	incloadgen -proto kvs -target localhost:11211 -rate 5000 -keys 1000 -duration 5s
//	incloadgen -proto dns -target localhost:5353  -rate 2000 -keys 16   -duration 5s
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"incod/internal/dns"
	"incod/internal/memcache"
	"incod/internal/trafficgen"
)

func main() {
	proto := flag.String("proto", "kvs", "protocol: kvs | dns")
	target := flag.String("target", "localhost:11211", "server address")
	rate := flag.Float64("rate", 1000, "requests per second")
	duration := flag.Duration("duration", 5*time.Second, "run duration")
	keys := flag.Uint64("keys", 1000, "key-space size (Zipf popularity)")
	preload := flag.Bool("preload", true, "kvs: SET every key before the run")
	flag.Parse()

	conn, err := net.Dial("udp", *target)
	if err != nil {
		log.Fatalf("incloadgen: %v", err)
	}
	defer conn.Close()

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	sampler := trafficgen.NewZipfKeys(rng, *keys, 1.06)

	var mu sync.Mutex
	sent := make(map[uint16]time.Time)
	var lats []time.Duration
	var recv, errs uint64

	// Receiver.
	go func() {
		buf := make([]byte, 64*1024)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				return
			}
			now := time.Now()
			id, ok := responseID(*proto, buf[:n])
			mu.Lock()
			if ok {
				if t0, pending := sent[id]; pending {
					delete(sent, id)
					lats = append(lats, now.Sub(t0))
					recv++
				}
			} else {
				errs++
			}
			mu.Unlock()
		}
	}()

	if *proto == "kvs" && *preload {
		for i := uint64(0); i < *keys; i++ {
			payload := memcache.EncodeFrame(memcache.Frame{RequestID: 0, Total: 1},
				memcache.EncodeRequest(memcache.Request{
					Op: memcache.OpSet, Key: fmt.Sprintf("key-%d", i), Value: []byte("value")}))
			if _, err := conn.Write(payload); err != nil {
				log.Fatalf("incloadgen: preload: %v", err)
			}
		}
		time.Sleep(200 * time.Millisecond)
		log.Printf("incloadgen: preloaded %d keys", *keys)
	}

	log.Printf("incloadgen: %s load on %s at %.0f req/s for %v", *proto, *target, *rate, *duration)
	gap := time.Duration(float64(time.Second) / *rate)
	deadline := time.Now().Add(*duration)
	var id uint16
	var total uint64
	for time.Now().Before(deadline) {
		id++
		total++
		payload, err := request(*proto, id, sampler)
		if err != nil {
			log.Fatalf("incloadgen: %v", err)
		}
		mu.Lock()
		sent[id] = time.Now()
		mu.Unlock()
		if _, err := conn.Write(payload); err != nil {
			log.Fatalf("incloadgen: %v", err)
		}
		time.Sleep(gap)
	}
	time.Sleep(300 * time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(q*float64(len(lats)-1))]
	}
	log.Printf("incloadgen: sent %d, answered %d (%.1f%%), outstanding %d, bad %d",
		total, recv, float64(recv)/float64(total)*100, len(sent), errs)
	log.Printf("incloadgen: latency p50=%v p99=%v max=%v", pct(0.5), pct(0.99), pct(1))
}

func request(proto string, id uint16, sampler *trafficgen.KeySampler) ([]byte, error) {
	switch proto {
	case "kvs":
		return memcache.EncodeFrame(memcache.Frame{RequestID: id, Total: 1},
			memcache.EncodeRequest(memcache.Request{Op: memcache.OpGet, Key: sampler.Next()})), nil
	case "dns":
		return dns.Encode(dns.NewQuery(id, dns.SequentialName(int(sampler.NextIndex()))))
	}
	return nil, fmt.Errorf("unknown protocol %q", proto)
}

func responseID(proto string, payload []byte) (uint16, bool) {
	switch proto {
	case "kvs":
		frame, _, err := memcache.DecodeFrame(payload)
		if err != nil {
			return 0, false
		}
		return frame.RequestID, true
	case "dns":
		m, err := dns.Decode(payload, 0)
		if err != nil || !m.Response {
			return 0, false
		}
		return m.ID, true
	}
	return 0, false
}
