// Command incloadgen drives real-UDP load against inckvsd or incdnsd — a
// software stand-in for the paper's OSNT traffic generator: open-loop
// paced load, Zipf key popularity, and client-side achieved-rate and
// latency reporting, so the 1-shard vs N-shard dataplane speedup is
// measurable from the CLI.
//
//	incloadgen -proto kvs -target localhost:11211 -rate 50000 -keys 1000 -duration 5s
//	incloadgen -proto dns -target localhost:5353  -rate 20000 -keys 16   -duration 5s
//
// The pacer is open-loop (it does not wait for replies), sending in
// batches every millisecond, so the offered rate holds even when the
// server lags; the report then shows how much of it was answered:
//
//	incloadgen: offered 50000 req/s for 5s
//	incloadgen: sent 250000 (50.0 kpps), answered 249875 (50.0 kpps, 99.9%), bad 0
//	incloadgen: latency p50=212µs p99=1.1ms max=3.2ms
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"incod/internal/dns"
	"incod/internal/memcache"
	"incod/internal/telemetry"
	"incod/internal/trafficgen"
)

func main() {
	proto := flag.String("proto", "kvs", "protocol: kvs | dns")
	target := flag.String("target", "localhost:11211", "server address")
	rate := flag.Float64("rate", 1000, "offered requests per second")
	duration := flag.Duration("duration", 5*time.Second, "run duration")
	keys := flag.Uint64("keys", 1000, "key-space size (Zipf popularity)")
	preload := flag.Bool("preload", true, "kvs: SET every key before the run")
	flag.Parse()

	conn, err := net.Dial("udp", *target)
	if err != nil {
		log.Fatalf("incloadgen: %v", err)
	}
	defer conn.Close()

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	sampler := trafficgen.NewZipfKeys(rng, *keys, 1.06)

	// In-flight requests by wire id. Both protocols carry a uint16 id, so
	// the id space wraps at high rates: an overwritten slot counts the
	// older request as lost, which slightly overstates loss rather than
	// understating latency.
	var mu sync.Mutex
	sent := make(map[uint16]time.Time)
	hist := telemetry.NewHistogram()
	var recv, errs uint64

	// Receiver.
	go func() {
		buf := make([]byte, 64*1024)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				return
			}
			now := time.Now()
			id, ok := responseID(*proto, buf[:n])
			mu.Lock()
			if ok {
				if t0, pending := sent[id]; pending {
					delete(sent, id)
					hist.Observe(now.Sub(t0))
					recv++
				}
			} else {
				errs++
			}
			mu.Unlock()
		}
	}()

	if *proto == "kvs" && *preload {
		for i := uint64(0); i < *keys; i++ {
			payload := memcache.EncodeFrame(memcache.Frame{RequestID: 0, Total: 1},
				memcache.EncodeRequest(memcache.Request{
					Op: memcache.OpSet, Key: fmt.Sprintf("key-%d", i), Value: []byte("value")}))
			if _, err := conn.Write(payload); err != nil {
				log.Fatalf("incloadgen: preload: %v", err)
			}
			if i%256 == 255 {
				time.Sleep(time.Millisecond) // don't outrun the socket buffer
			}
		}
		time.Sleep(200 * time.Millisecond)
		log.Printf("incloadgen: preloaded %d keys", *keys)
	}

	log.Printf("incloadgen: %s load on %s, offered %.0f req/s for %v", *proto, *target, *rate, *duration)

	// Open-loop pacer: every tick, send however many requests are due by
	// now. Batching decouples the offered rate from timer resolution, so
	// tens of thousands of req/s are reachable from one goroutine.
	var id uint16
	var total uint64
	start := time.Now()
	const tickEvery = time.Millisecond
	const maxBatch = 4096 // bound catch-up bursts after a stall
	for {
		elapsed := time.Since(start)
		if elapsed >= *duration {
			break
		}
		due := uint64(elapsed.Seconds() * *rate)
		batch := uint64(0)
		for total < due && batch < maxBatch {
			id++
			total++
			batch++
			payload, err := request(*proto, id, sampler)
			if err != nil {
				log.Fatalf("incloadgen: %v", err)
			}
			mu.Lock()
			sent[id] = time.Now()
			mu.Unlock()
			if _, err := conn.Write(payload); err != nil {
				log.Fatalf("incloadgen: %v", err)
			}
		}
		time.Sleep(tickEvery)
	}
	sendSpan := time.Since(start)
	time.Sleep(300 * time.Millisecond) // collect stragglers

	mu.Lock()
	defer mu.Unlock()
	sentKpps := float64(total) / sendSpan.Seconds() / 1000
	ansKpps := float64(recv) / sendSpan.Seconds() / 1000
	log.Printf("incloadgen: sent %d (%.1f kpps), answered %d (%.1f kpps, %.1f%%), outstanding %d, bad %d",
		total, sentKpps, recv, ansKpps, float64(recv)/float64(total)*100, len(sent), errs)
	log.Printf("incloadgen: latency p50=%v p99=%v max=%v", hist.Median(), hist.P99(), hist.Max())
}

func request(proto string, id uint16, sampler *trafficgen.KeySampler) ([]byte, error) {
	switch proto {
	case "kvs":
		return memcache.EncodeFrame(memcache.Frame{RequestID: id, Total: 1},
			memcache.EncodeRequest(memcache.Request{Op: memcache.OpGet, Key: sampler.Next()})), nil
	case "dns":
		return dns.Encode(dns.NewQuery(id, dns.SequentialName(int(sampler.NextIndex()))))
	}
	return nil, fmt.Errorf("unknown protocol %q", proto)
}

func responseID(proto string, payload []byte) (uint16, bool) {
	switch proto {
	case "kvs":
		frame, _, err := memcache.DecodeFrame(payload)
		if err != nil {
			return 0, false
		}
		return frame.RequestID, true
	case "dns":
		m, err := dns.Decode(payload, 0)
		if err != nil || !m.Response {
			return 0, false
		}
		return m.ID, true
	}
	return 0, false
}
