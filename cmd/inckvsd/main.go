// Command inckvsd is a runnable memcached-protocol UDP server built from
// the same store and codec the simulator uses, served by the shared
// sharded dataplane (internal/dataplane) with an embedded on-demand
// orchestrator: it meters the live query rate, runs the selected §9.1
// placement policy, and — with -nictier — actually shifts the service
// between the host handler and an emulated LaKe-style NIC cache tier
// (without the flag the decision stays advisory).
//
// Try it:
//
//	inckvsd -addr :11211 -ctrl :8080 -policy threshold -shards 4 -nictier &
//	# framed clients (memcached UDP mode) and raw ASCII both work:
//	printf 'set k 0 0 5\r\nhello\r\n' | socat - UDP:localhost:11211
//	printf 'get k\r\n' | socat - UDP:localhost:11211
//	curl localhost:8080/v1/services/kvs           # placement, shifts, durations
//	curl localhost:8080/v1/services/kvs/dataplane # tier hit ratio + power
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"incod/internal/core"
	"incod/internal/daemon"
	"incod/internal/dataplane"
	"incod/internal/kvs"
	"incod/internal/nictier"
	"incod/internal/power"
)

func main() {
	addr := flag.String("addr", ":11211", "UDP listen address")
	shards := flag.Int("shards", 0, "dataplane shard workers (0 = GOMAXPROCS)")
	sockets := flag.Int("sockets", 0,
		"per-shard SO_REUSEPORT sockets with batched recvmmsg/sendmmsg I/O (0 = classic single-reader engine; batched mode runs one shard per socket, Linux)")
	rxBatch := flag.Int("rxbatch", 0, "datagrams per receive batch in batched mode (0 = default 32)")
	txBatch := flag.Int("txbatch", 0, "datagrams per send batch in batched mode (0 = default 32)")
	bufCache := flag.Int("bufcache", 0, "per-worker private receive-buffer free list size in batched mode (0 = rxbatch, negative disables)")
	engineMode := flag.String("engine", "batched",
		"batched-mode transport: batched (recvmmsg/sendmmsg) | uring (io_uring multishot recv, falls back to batched when the kernel can't) | single (portable fallback)")
	busyPoll := flag.Int("busypoll", 0, "SO_BUSY_POLL microseconds on the serving sockets (0 = off; trades CPU for latency)")
	pin := flag.Bool("pin", false, "pin each batched shard worker to a CPU via sched_setaffinity")
	gsoTx := flag.Bool("gsotx", false, "coalesce same-destination replies into UDP_SEGMENT trains in batched mode (degrades to per-datagram sends on kernels without UDP_SEGMENT)")
	maxEntries := flag.Int("max-entries", 0, "LRU-bound the store to this many entries (0 = unbounded)")
	crossKpps := flag.Float64("crossover", 80, "software/hardware crossover (kpps)")
	policy := flag.String("policy", "threshold",
		"placement policy: "+strings.Join(core.PolicyNames(), " | "))
	ctrl := flag.String("ctrl", "", "control-plane HTTP address (e.g. :8080); empty disables")
	useTier := flag.Bool("nictier", false,
		"attach the emulated NIC offload tier (LaKe-style L1/L2 cache): policy shifts become real dataplane transitions")
	hotKeys := flag.Int("hotkeys", 16,
		"per-shard hot-key top-K sample size fed by the GET path (surfaced in /v1/dataplane, seeds the NIC tier's L1 on warm-up; 0 disables)")
	flag.Parse()

	store := kvs.NewShardedStore(*shards, *maxEntries)
	store.EnableHotKeys(*hotKeys)
	handler := kvs.NewHandler(store)
	eng, err := daemon.ListenEngine(
		daemon.EngineOptions{Addr: *addr, Sockets: *sockets, RxBatch: *rxBatch, TxBatch: *txBatch,
			BufCache: *bufCache, Engine: *engineMode, BusyPollUs: *busyPoll, Pin: *pin, GSOTx: *gsoTx},
		handler, dataplane.Config{Name: "inckvsd", Shards: *shards, ShardBy: kvs.ShardByKey})
	if err != nil {
		log.Fatalf("inckvsd: %v", err)
	}
	var tierSvc core.Service
	mode := "advisory"
	if *useTier {
		tierSvc = nictier.NewService("kvs", eng, nictier.NewKVS(handler))
		mode = "nictier"
	}
	io := "single-reader"
	if eng.Batched() {
		io = fmt.Sprintf("batched/%s over %d sockets", eng.Backend(), *sockets)
	}
	log.Printf("inckvsd: serving memcached UDP on %s (%d store shards, %s, policy %s, %s, crossover %.0f kpps)",
		*addr, store.Shards(), io, *policy, mode, *crossKpps)

	orch, svc, ctrlSrv, err := daemon.StartControlPlane(daemon.StartOptions{
		Name: "kvs", Policy: *policy, CrossKpps: *crossKpps,
		Curve: power.MemcachedMellanox, CtrlAddr: *ctrl, Service: tierSvc,
		Ready: eng.Running,
	})
	if err != nil {
		log.Fatalf("inckvsd: %v", err)
	}
	defer orch.Close()
	svc.UseCounter(eng.Handled)
	if err := orch.AttachDataplane("kvs", eng); err != nil {
		log.Fatalf("inckvsd: %v", err)
	}
	if ctrlSrv != nil {
		log.Printf("inckvsd: control plane on http://%s/v1/services", ctrlSrv.Addr())
	}

	// Graceful exit: a signal (or a control-plane serve failure) drains
	// the HTTP server, stops the orchestrator, and drains the dataplane
	// (queued datagrams are still answered before the socket closes).
	daemon.OnShutdown("inckvsd", ctrlSrv, orch, eng.Close)

	eng.Run()
	log.Printf("inckvsd: shut down cleanly")
}
