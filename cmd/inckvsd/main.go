// Command inckvsd is a runnable memcached-protocol UDP server built from
// the same store and codec the simulator uses, with an embedded on-demand
// orchestrator: it meters the live query rate, runs the selected §9.1
// placement policy, and reports when the service would shift between host
// and network (advisory, since this process has no FPGA attached).
//
// Try it:
//
//	inckvsd -addr :11211 -ctrl :8080 -policy threshold &
//	# framed clients (memcached UDP mode) and raw ASCII both work:
//	printf 'set k 0 0 5\r\nhello\r\n' | socat - UDP:localhost:11211
//	printf 'get k\r\n' | socat - UDP:localhost:11211
//	curl localhost:8080/v1/services/kvs
package main

import (
	"flag"
	"log"
	"net"
	"strings"
	"sync/atomic"
	"time"

	"incod/internal/core"
	"incod/internal/daemon"
	"incod/internal/kvs"
	"incod/internal/memcache"
	"incod/internal/power"
	"incod/internal/simnet"
)

func main() {
	addr := flag.String("addr", ":11211", "UDP listen address")
	crossKpps := flag.Float64("crossover", 80, "advisory software/hardware crossover (kpps)")
	policy := flag.String("policy", "threshold",
		"placement policy: "+strings.Join(core.PolicyNames(), " | "))
	ctrl := flag.String("ctrl", "", "control-plane HTTP address (e.g. :8080); empty disables")
	flag.Parse()

	conn, err := net.ListenPacket("udp", *addr)
	if err != nil {
		log.Fatalf("inckvsd: %v", err)
	}
	defer conn.Close()
	log.Printf("inckvsd: serving memcached UDP on %s (policy %s, advisory crossover %.0f kpps)",
		*addr, *policy, *crossKpps)

	store := kvs.NewStore()
	orch, svc, ctrlSrv, err := daemon.StartControlPlane(daemon.StartOptions{
		Name: "kvs", Policy: *policy, CrossKpps: *crossKpps,
		Curve: power.MemcachedMellanox, CtrlAddr: *ctrl,
	})
	if err != nil {
		log.Fatalf("inckvsd: %v", err)
	}
	defer orch.Close()
	if ctrlSrv != nil {
		log.Printf("inckvsd: control plane on http://%s/v1/services", ctrlSrv.Addr())
	}

	// Graceful exit: a signal (or a control-plane serve failure) drains
	// the HTTP server, stops the orchestrator and unblocks the read loop.
	var closing atomic.Bool
	daemon.OnShutdown("inckvsd", ctrlSrv, orch, func() {
		closing.Store(true)
		conn.Close()
	})

	start := time.Now()
	buf := make([]byte, 64*1024)
	for {
		n, from, err := conn.ReadFrom(buf)
		if err != nil {
			if closing.Load() {
				log.Printf("inckvsd: shut down cleanly")
				return
			}
			log.Printf("inckvsd: read: %v", err)
			return
		}
		svc.Observe()
		// The 8-byte UDP frame header is all-binary, so framing is
		// ambiguous; prefer the framed interpretation, but fall back to
		// raw ASCII so manual testing with socat/netcat works.
		framed := false
		var frame memcache.Frame
		var req memcache.Request
		parseErr := memcache.ErrMalformed
		if f, body, err := memcache.DecodeFrame(buf[:n]); err == nil {
			if r, err := memcache.ParseRequest(body); err == nil {
				framed, frame, req, parseErr = true, f, r, nil
			}
		}
		if parseErr != nil {
			if r, err := memcache.ParseRequest(buf[:n]); err == nil {
				req, parseErr = r, nil
			}
		}
		var resp memcache.Response
		if parseErr != nil {
			resp = memcache.Response{Status: memcache.StatusError}
		} else {
			resp = store.Apply(req, simnet.Time(time.Since(start)))
		}
		out := memcache.EncodeResponse(resp)
		if framed {
			out = memcache.EncodeFrame(memcache.Frame{RequestID: frame.RequestID, Total: 1}, out)
		}
		if _, err := conn.WriteTo(out, from); err != nil {
			log.Printf("inckvsd: write: %v", err)
		}
	}
}
