// Command inckvsd is a runnable memcached-protocol UDP server built from
// the same store and codec the simulator uses, with an embedded on-demand
// advisor: it meters the live query rate and reports when the §9.1
// network-controller policy would shift the service between host and
// network (advisory, since this process has no FPGA attached).
//
// Try it:
//
//	inckvsd -addr :11211 &
//	# framed clients (memcached UDP mode) and raw ASCII both work:
//	printf 'set k 0 0 5\r\nhello\r\n' | socat - UDP:localhost:11211
//	printf 'get k\r\n' | socat - UDP:localhost:11211
package main

import (
	"flag"
	"log"
	"net"
	"time"

	"incod/internal/daemon"
	"incod/internal/kvs"
	"incod/internal/memcache"
	"incod/internal/simnet"
)

func main() {
	addr := flag.String("addr", ":11211", "UDP listen address")
	crossKpps := flag.Float64("crossover", 80, "advisory software/hardware crossover (kpps)")
	ctrl := flag.String("ctrl", "", "control-plane HTTP address (e.g. :8080); empty disables")
	flag.Parse()

	conn, err := net.ListenPacket("udp", *addr)
	if err != nil {
		log.Fatalf("inckvsd: %v", err)
	}
	defer conn.Close()
	log.Printf("inckvsd: serving memcached UDP on %s (advisory crossover %.0f kpps)", *addr, *crossKpps)

	store := kvs.NewStore()
	adv := daemon.New("inckvsd", *crossKpps)
	defer adv.Close()
	if *ctrl != "" {
		adv.ServeCtrl(*ctrl)
		log.Printf("inckvsd: control plane on http://%s/status", *ctrl)
	}

	start := time.Now()
	buf := make([]byte, 64*1024)
	for {
		n, from, err := conn.ReadFrom(buf)
		if err != nil {
			log.Printf("inckvsd: read: %v", err)
			return
		}
		adv.Observe()
		// The 8-byte UDP frame header is all-binary, so framing is
		// ambiguous; prefer the framed interpretation, but fall back to
		// raw ASCII so manual testing with socat/netcat works.
		framed := false
		var frame memcache.Frame
		var req memcache.Request
		parseErr := memcache.ErrMalformed
		if f, body, err := memcache.DecodeFrame(buf[:n]); err == nil {
			if r, err := memcache.ParseRequest(body); err == nil {
				framed, frame, req, parseErr = true, f, r, nil
			}
		}
		if parseErr != nil {
			if r, err := memcache.ParseRequest(buf[:n]); err == nil {
				req, parseErr = r, nil
			}
		}
		var resp memcache.Response
		if parseErr != nil {
			resp = memcache.Response{Status: memcache.StatusError}
		} else {
			resp = store.Apply(req, simnet.Time(time.Since(start)))
		}
		out := memcache.EncodeResponse(resp)
		if framed {
			out = memcache.EncodeFrame(memcache.Frame{RequestID: frame.RequestID, Total: 1}, out)
		}
		if _, err := conn.WriteTo(out, from); err != nil {
			log.Printf("inckvsd: write: %v", err)
		}
	}
}
