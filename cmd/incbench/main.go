// Command incbench regenerates the paper's tables and figures.
//
// Usage:
//
//	incbench -list           # catalog of experiments
//	incbench fig3a fig4      # run selected experiments
//	incbench all             # run everything
package main

import (
	"flag"
	"fmt"
	"os"

	"incod/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	format := flag.String("format", "text", "output format: text | csv")
	outDir := flag.String("o", "", "write each experiment to <dir>/<id>.{txt,csv} instead of stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: incbench [-list] [-format text|csv] [-o dir] <experiment-id>... | all\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	render := func(t *experiments.Table) (string, string) {
		if *format == "csv" {
			return t.CSV(), "csv"
		}
		return t.Render(), "txt"
	}
	emit := func(e experiments.Experiment) error {
		body, ext := render(e.Run())
		if *outDir == "" {
			fmt.Println(body)
			return nil
		}
		path := fmt.Sprintf("%s/%s.%s", *outDir, e.ID, ext)
		return os.WriteFile(path, []byte(body), 0o644)
	}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "incbench: %v\n", err)
			os.Exit(1)
		}
	}
	var selected []experiments.Experiment
	if len(args) == 1 && args[0] == "all" {
		selected = experiments.All()
	} else {
		for _, id := range args {
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "incbench: unknown experiment %q (try -list)\n", id)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}
	for _, e := range selected {
		if err := emit(e); err != nil {
			fmt.Fprintf(os.Stderr, "incbench: %v\n", err)
			os.Exit(1)
		}
	}
}
