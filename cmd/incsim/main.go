// Command incsim runs a JSON-defined what-if scenario through the
// deterministic simulator and prints the timeline as CSV (or JSON).
//
//	incsim -scenario s.json
//	echo '{"app":"kvs","controller":"network",
//	       "profile":[{"duration_s":2,"kpps":10},{"duration_s":5,"kpps":200}]}' | incsim
//
// See internal/scenario for the schema: application (kvs/dns/paxos),
// controller (network/host/none) or a named placement policy (threshold/
// power/static-host/static-network — the same policy code the live
// daemons run), idle strategy, seed, and an offered-load profile.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"incod/internal/scenario"
)

func main() {
	path := flag.String("scenario", "", "scenario JSON file (default: stdin)")
	asJSON := flag.Bool("json", false, "emit the full result as JSON instead of CSV")
	flag.Parse()

	var data []byte
	var err error
	if *path == "" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*path)
	}
	if err != nil {
		log.Fatalf("incsim: %v", err)
	}
	s, err := scenario.Parse(data)
	if err != nil {
		log.Fatalf("incsim: %v", err)
	}
	res, err := scenario.Run(s)
	if err != nil {
		log.Fatalf("incsim: %v", err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatalf("incsim: %v", err)
		}
		return
	}
	fmt.Print(res.CSV())
}
