// Command incbenchdiff compares two incod-bench/v1 snapshots (the JSON
// scripts/bench.sh emits) and exits nonzero when the new run regresses
// the old one beyond a tolerance: hot-path ns/op up by more than the
// threshold, or loopback achieved-kpps down by more than it.
//
// Entries are matched by package plus benchmark name with any
// -GOMAXPROCS suffix stripped, so runs from hosts with different core
// counts still line up. Entries present on only one side are reported
// but never fail the diff — benches come and go as the repo grows.
//
// Benchmark families with /shards-N sub-benches additionally gate the
// scaling curve itself: for each shard count the speedup relative to
// the family's smallest shard count must not fall below the baseline's
// by more than the tolerance, so a change that keeps every absolute
// ns/op within tolerance but flattens the scaling curve still fails.
//
//	incbenchdiff -old BENCH_5.json -new BENCH_7.json            # 15%
//	incbenchdiff -old BENCH_5.json -new ci.json -tolerance 75   # cross-host smoke
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type benchFile struct {
	Schema     string  `json:"schema"`
	Generated  string  `json:"generated"`
	Go         string  `json:"go"`
	CPU        string  `json:"cpu"`
	Benchmarks []entry `json:"benchmarks"`
}

type entry struct {
	Name       string             `json:"name"`
	Package    string             `json:"package"`
	Iterations float64            `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BPerOp     float64            `json:"b_per_op"`
	Allocs     float64            `json:"allocs_per_op"`
	Metrics    map[string]float64 `json:"metrics"`
}

// minCalibrated is the iteration floor below which a run's ns/op is
// treated as uncalibrated (BENCH_TIME=1x CI smokes time a single cold
// iteration, which is dominated by timer granularity and lazy init) and
// excluded from the gate. The fixed-count loopback kpps metrics stay
// comparable either way.
const minCalibrated = 10

// gomaxprocsSuffix is the "-N" go test appends to benchmark names when
// GOMAXPROCS != 1.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func key(e entry) string {
	name := gomaxprocsSuffix.ReplaceAllString(e.Name, "")
	if strings.HasSuffix(name, "/shards") {
		// The stripped digits were a /shards-N sub-bench's shard count,
		// not a GOMAXPROCS suffix (single-core runs append none).
		name = e.Name
	}
	return e.Package + " " + name
}

// shardSuffix picks the shard count out of a normalized key; keys
// sharing the remainder form one scaling family.
var shardSuffix = regexp.MustCompile(`/shards-(\d+)$`)

func load(path string) (map[string]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != "incod-bench/v1" {
		return nil, fmt.Errorf("%s: schema %q, want incod-bench/v1", path, f.Schema)
	}
	out := make(map[string]entry, len(f.Benchmarks))
	for _, e := range f.Benchmarks {
		out[key(e)] = e
	}
	return out, nil
}

func main() {
	oldPath := flag.String("old", "", "baseline snapshot (required)")
	newPath := flag.String("new", "", "candidate snapshot (required)")
	tolerance := flag.Float64("tolerance", 15,
		"max allowed regression in percent (ns/op up, achieved-kpps down)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	oldB, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "incbenchdiff:", err)
		os.Exit(2)
	}
	newB, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "incbenchdiff:", err)
		os.Exit(2)
	}

	keys := make([]string, 0, len(oldB))
	for k := range oldB {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var regressions []string
	matched := 0
	for _, k := range keys {
		o := oldB[k]
		n, ok := newB[k]
		if !ok {
			fmt.Printf("  (gone) %s\n", k)
			continue
		}
		matched++
		if o.NsPerOp > 0 && n.NsPerOp > 0 && o.Iterations >= minCalibrated && n.Iterations >= minCalibrated {
			deltaPct := (n.NsPerOp/o.NsPerOp - 1) * 100
			fmt.Printf("  %-72s ns/op %10.1f -> %10.1f  (%+6.1f%%)\n", k, o.NsPerOp, n.NsPerOp, deltaPct)
			if deltaPct > *tolerance {
				regressions = append(regressions,
					fmt.Sprintf("%s: ns/op %.1f -> %.1f (+%.1f%% > %.0f%%)", k, o.NsPerOp, n.NsPerOp, deltaPct, *tolerance))
			}
		}
		oldKpps, okO := o.Metrics["achieved-kpps"]
		newKpps, okN := n.Metrics["achieved-kpps"]
		if okO && okN && oldKpps > 0 {
			dropPct := (1 - newKpps/oldKpps) * 100
			fmt.Printf("  %-72s kpps  %10.1f -> %10.1f  (%+6.1f%%)\n", k, oldKpps, newKpps, -dropPct)
			if dropPct > *tolerance {
				regressions = append(regressions,
					fmt.Sprintf("%s: achieved-kpps %.1f -> %.1f (-%.1f%% > %.0f%%)", k, oldKpps, newKpps, dropPct, *tolerance))
			}
		}
	}
	for k := range newB {
		if _, ok := oldB[k]; !ok {
			fmt.Printf("  (new)  %s\n", k)
		}
	}

	// Scaling-curve gate: group /shards-N keys into families and compare
	// each point's speedup over the family's smallest shard count.
	type curvePoint struct {
		shards       int
		oldNs, newNs float64
	}
	families := map[string][]curvePoint{}
	for _, k := range keys {
		m := shardSuffix.FindStringSubmatch(k)
		if m == nil {
			continue
		}
		o := oldB[k]
		n, ok := newB[k]
		if !ok || o.NsPerOp <= 0 || n.NsPerOp <= 0 ||
			o.Iterations < minCalibrated || n.Iterations < minCalibrated {
			continue
		}
		shards, _ := strconv.Atoi(m[1])
		fam := strings.TrimSuffix(k, m[0])
		families[fam] = append(families[fam], curvePoint{shards, o.NsPerOp, n.NsPerOp})
	}
	famNames := make([]string, 0, len(families))
	for fam := range families {
		famNames = append(famNames, fam)
	}
	sort.Strings(famNames)
	for _, fam := range famNames {
		pts := families[fam]
		if len(pts) < 2 {
			continue
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].shards < pts[j].shards })
		base := pts[0]
		for _, p := range pts[1:] {
			oldSp := base.oldNs / p.oldNs
			newSp := base.newNs / p.newNs
			deltaPct := (newSp/oldSp - 1) * 100
			fmt.Printf("  %-72s x%d speedup %7.2f -> %7.2f  (%+6.1f%%)\n",
				fam+" [curve]", p.shards, oldSp, newSp, deltaPct)
			if -deltaPct > *tolerance {
				regressions = append(regressions,
					fmt.Sprintf("%s: %d-shard speedup %.2f -> %.2f (-%.1f%% > %.0f%%)",
						fam, p.shards, oldSp, newSp, -deltaPct, *tolerance))
			}
		}
	}
	fmt.Printf("incbenchdiff: %d matched benchmarks, tolerance %.0f%%\n", matched, *tolerance)
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "incbenchdiff: %d regression(s):\n", len(regressions))
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
	fmt.Println("incbenchdiff: no regressions beyond tolerance")
}
