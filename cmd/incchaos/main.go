// Command incchaos sweeps the deterministic chaos properties: the live
// kvs/dns/paxos handlers, NIC offload tiers and orchestrator running on
// the simulated network under seeded fault injection.
//
// A clean sweep exits 0. On a violation it prints the exact command that
// replays the failing (property, seed) byte-for-byte and exits 1.
//
//	incchaos -seeds 1000 -quick          # the CI sweep
//	incchaos -prop paxos-vote-safety -seed 1337 -trace trace.log
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"incod/internal/chaos"
)

func main() {
	var (
		seeds   = flag.Int("seeds", 1000, "number of consecutive seeds to sweep (from 0)")
		seed    = flag.Int64("seed", -1, "run one specific seed instead of sweeping")
		prop    = flag.String("prop", "", "run only the named property (see -list)")
		quick   = flag.Bool("quick", false, "shrink per-seed workloads (for wide sweeps)")
		list    = flag.Bool("list", false, "list properties and exit")
		verbose = flag.Bool("v", false, "keep orchestrator/daemon logging on")
		trace   = flag.String("trace", "", "write the packet event trace to this file (single-seed runs)")
	)
	flag.Parse()

	if !*verbose {
		// Thousands of placement shifts otherwise drown the summary.
		log.SetOutput(io.Discard)
	}

	props := chaos.Properties()
	if *list {
		for _, p := range props {
			fmt.Printf("%-24s %s\n", p.Name, p.Doc)
		}
		return
	}
	if *prop != "" {
		p, err := chaos.PropertyByName(*prop)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		props = []chaos.Property{p}
	}

	cfg := chaos.Config{Quick: *quick}
	if *seed >= 0 {
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			defer f.Close()
			cfg.Trace = f
		}
		code := 0
		for _, p := range props {
			hash, err := p.Run(*seed, cfg)
			if err != nil {
				fmt.Printf("FAIL %-24s seed=%d: %v\n", p.Name, *seed, err)
				fmt.Printf("     repro: go run ./cmd/incchaos -prop %s -seed %d\n", p.Name, *seed)
				code = 1
				continue
			}
			fmt.Printf("ok   %-24s seed=%d trace=%016x\n", p.Name, *seed, hash)
		}
		os.Exit(code)
	}

	if *trace != "" {
		fmt.Fprintln(os.Stderr, "-trace needs a single -seed (a sweep would interleave runs)")
		os.Exit(2)
	}
	rep := chaos.Sweep(props, *seeds, cfg, nil)
	for _, v := range rep.Violations {
		fmt.Printf("FAIL %-24s seed=%d: %v\n", v.Prop, v.Seed, v.Err)
		fmt.Printf("     repro: %s\n", v.ReproCommand())
	}
	fmt.Printf("chaos: %d runs (%d seeds x %d properties) in %v, %d violations\n",
		rep.Runs, rep.Seeds, len(props), rep.Elapsed.Round(1e6), len(rep.Violations))
	if !rep.OK() {
		os.Exit(1)
	}
}
