// Command incdnsd is a runnable authoritative DNS UDP server (A records
// only, like Emu DNS) built from the repository's wire codec and zone,
// served by the shared sharded dataplane with the on-demand orchestrator
// attached. Serving is allocation-free per query: answers come from the
// zone's precompiled wire-answer cache (one copy plus an ID/flags patch),
// lookups are case-insensitive without per-query lowering, and batched
// mode resolves whole recvmmsg batches per handler call.
//
// Zone files are simple "name ipv4 [ttl]" lines:
//
//	host0.example.com 10.0.0.1 300
//
// Try it:
//
//	incdnsd -addr :5353 -zone zone.txt -ctrl :8081 &
//	dig @localhost -p 5353 host0.example.com A
//	curl localhost:8081/v1/services/dns
//	curl localhost:8081/v1/services/dns/dataplane
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"strings"

	"incod/internal/core"
	"incod/internal/daemon"
	"incod/internal/dataplane"
	"incod/internal/dns"
	"incod/internal/nictier"
	"incod/internal/power"
)

func main() {
	addr := flag.String("addr", ":5353", "UDP listen address")
	shards := flag.Int("shards", 0, "dataplane shard workers (0 = GOMAXPROCS)")
	sockets := flag.Int("sockets", 0,
		"per-shard SO_REUSEPORT sockets with batched recvmmsg/sendmmsg I/O (0 = classic single-reader engine; batched mode runs one shard per socket, Linux)")
	rxBatch := flag.Int("rxbatch", 0, "datagrams per receive batch in batched mode (0 = default 32)")
	txBatch := flag.Int("txbatch", 0, "datagrams per send batch in batched mode (0 = default 32)")
	bufCache := flag.Int("bufcache", 0, "per-worker private receive-buffer free list size in batched mode (0 = rxbatch, negative disables)")
	engineMode := flag.String("engine", "batched",
		"batched-mode transport: batched (recvmmsg/sendmmsg) | uring (io_uring multishot recv, falls back to batched when the kernel can't) | single (portable fallback)")
	busyPoll := flag.Int("busypoll", 0, "SO_BUSY_POLL microseconds on the serving sockets (0 = off; trades CPU for latency)")
	pin := flag.Bool("pin", false, "pin each batched shard worker to a CPU via sched_setaffinity")
	gsoTx := flag.Bool("gsotx", false, "coalesce same-destination replies into UDP_SEGMENT trains in batched mode (degrades to per-datagram sends on kernels without UDP_SEGMENT)")
	zonePath := flag.String("zone", "", "zone file (name ipv4 [ttl] per line); empty = demo zone")
	crossKpps := flag.Float64("crossover", 150, "software/hardware crossover (kpps)")
	policy := flag.String("policy", "threshold",
		"placement policy: "+strings.Join(core.PolicyNames(), " | "))
	ctrl := flag.String("ctrl", "", "control-plane HTTP address (e.g. :8081); empty disables")
	useTier := flag.Bool("nictier", false,
		"attach the emulated NIC offload tier (Emu-DNS-style answer table): policy shifts become real dataplane transitions")
	flag.Parse()

	// The zone must be fully loaded before serving starts: it is read
	// lock-free by every shard worker.
	zone := dns.NewZone()
	if *zonePath == "" {
		zone.PopulateSequential(16)
		log.Printf("incdnsd: no -zone given; serving %d demo records (host0.example.com ...)", zone.Len())
	} else if err := loadZone(zone, *zonePath); err != nil {
		log.Fatalf("incdnsd: %v", err)
	}

	eng, err := daemon.ListenEngine(
		daemon.EngineOptions{Addr: *addr, Sockets: *sockets, RxBatch: *rxBatch, TxBatch: *txBatch,
			BufCache: *bufCache, Engine: *engineMode, BusyPollUs: *busyPoll, Pin: *pin, GSOTx: *gsoTx},
		dns.NewHandler(zone), dataplane.Config{
			Name: "incdnsd", Shards: *shards,
			// DNS datagrams are small; a tight bound also caps the
			// engine's overload memory (see the dataplane package doc).
			MaxDatagram: 4096,
		})
	if err != nil {
		log.Fatalf("incdnsd: %v", err)
	}
	var tierSvc core.Service
	mode := "advisory"
	if *useTier {
		tierSvc = nictier.NewService("dns", eng, nictier.NewDNS(zone))
		mode = "nictier"
	}
	io := "single-reader"
	if eng.Batched() {
		io = fmt.Sprintf("batched/%s over %d sockets", eng.Backend(), *sockets)
	}
	log.Printf("incdnsd: serving %d records on %s (%s, policy %s, %s)", zone.Len(), *addr, io, *policy, mode)

	orch, svc, ctrlSrv, err := daemon.StartControlPlane(daemon.StartOptions{
		Name: "dns", Policy: *policy, CrossKpps: *crossKpps,
		Curve: power.NSDServer, CtrlAddr: *ctrl, Service: tierSvc,
		Ready: eng.Running,
	})
	if err != nil {
		log.Fatalf("incdnsd: %v", err)
	}
	defer orch.Close()
	svc.UseCounter(eng.Handled)
	if err := orch.AttachDataplane("dns", eng); err != nil {
		log.Fatalf("incdnsd: %v", err)
	}
	if ctrlSrv != nil {
		log.Printf("incdnsd: control plane on http://%s/v1/services", ctrlSrv.Addr())
	}

	daemon.OnShutdown("incdnsd", ctrlSrv, orch, eng.Close)

	eng.Run()
	log.Printf("incdnsd: shut down cleanly")
}

func loadZone(zone *dns.Zone, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return fmt.Errorf("%s:%d: want 'name ipv4 [ttl]'", path, line)
		}
		ip := net.ParseIP(fields[1]).To4()
		if ip == nil {
			return fmt.Errorf("%s:%d: bad IPv4 %q", path, line, fields[1])
		}
		ttl := uint32(300)
		if len(fields) >= 3 {
			v, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return fmt.Errorf("%s:%d: bad TTL %q", path, line, fields[2])
			}
			ttl = uint32(v)
		}
		zone.Add(fields[0], [4]byte{ip[0], ip[1], ip[2], ip[3]}, ttl)
	}
	return sc.Err()
}
