// Command incfleetd is the paper's §6 datacenter argument run live: a
// fleet controller that supervises N daemon instances (inckvsd, incdnsd,
// incpaxosd acceptors) over their /v1 APIs, enforces a global offload
// budget of K lit NIC tiers, replays a day of demand as real UDP traffic
// through incloadgen workers, and writes the measured fleet-wide
// day-saving figures to FLEET_6.json.
//
// One command reproduces the curve end to end on loopback:
//
//	incfleetd -spawn -n 10 -k 3 -wall 45s -report FLEET_6.json -assert
//
// or adopt an already-running fleet:
//
//	incfleetd -members 'kvs=127.0.0.1:8080=127.0.0.1:11211,dns=127.0.0.1:8081=127.0.0.1:5353'
//
// Loopback cannot offer datacenter rates, so -scale maps between them:
// the replayer offers trace/scale req/s and the energy model multiplies
// the measured rates back. -wall compresses the 24h trace; the report
// extrapolates the integrated energy to kWh/day.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"incod/internal/cluster"
	"incod/internal/fleet"
)

func main() {
	n := flag.Int("n", 10, "fleet size when spawning")
	k := flag.Int("k", 3, "global budget: max simultaneously lit offload tiers")
	spawn := flag.Bool("spawn", true, "spawn the fleet's daemons locally (-members overrides)")
	membersSpec := flag.String("members", "",
		"adopt running daemons: comma-separated kind=ctrlAddr=dataAddr entries")
	bin := flag.String("bin", "", "directory holding the daemon and incloadgen binaries (default: incfleetd's own)")
	mix := flag.String("mix", "kvs,dns,paxos", "kind rotation used to fill -n members")
	traceKind := flag.String("trace", "rack", "demand volatility: rack | caching | web")
	night := flag.Float64("night", 30, "modeled per-member night load (kpps)")
	peak := flag.Float64("peak", 300, "modeled per-member peak load (kpps)")
	wall := flag.Duration("wall", 45*time.Second, "wall-clock window the 24h trace is compressed into")
	segments := flag.Int("segments", 12, "ramp segments per replayed trace")
	scale := flag.Float64("scale", 20, "rate scale: modeled kpps = offered loopback kpps * scale")
	period := flag.Duration("period", 500*time.Millisecond, "controller planning tick")
	hold := flag.Int("hold", 2, "scheduler hold ticks before acting")
	listen := flag.String("listen", "127.0.0.1:0", "HTTP address for GET /v1/fleet; empty disables")
	dir := flag.String("dir", "", "output directory for logs and reports (default: a temp dir)")
	reportPath := flag.String("report", "FLEET_6.json", "write the run report here")
	doAssert := flag.Bool("assert", false, "exit nonzero unless the run reproduces the fleet claims")
	seed := flag.Int64("seed", 6, "trace RNG seed")
	daemonFlags := flag.String("daemon-flags", "",
		"extra whitespace-separated flags appended to every spawned daemon (e.g. \"-engine uring -sockets 4 -pin\")")
	flag.Parse()

	if err := run(*n, *k, *spawn, *membersSpec, *bin, *mix, *traceKind, *night, *peak,
		*wall, *segments, *scale, *period, *hold, *listen, *dir, *reportPath,
		*doAssert, *seed, strings.Fields(*daemonFlags)); err != nil {
		log.Fatalf("incfleetd: %v", err)
	}
}

func run(n, k int, spawn bool, membersSpec, bin, mix, traceKind string,
	night, peak float64, wall time.Duration, segments int, scale float64,
	period time.Duration, hold int, listen, dir, reportPath string,
	doAssert bool, seed int64, daemonFlags []string) error {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if bin == "" {
		if exe, err := os.Executable(); err == nil {
			bin = filepath.Dir(exe)
		} else {
			bin = "."
		}
	}
	if dir == "" {
		d, err := os.MkdirTemp("", "incfleetd-*")
		if err != nil {
			return err
		}
		dir = d
		log.Printf("incfleetd: logs and reports under %s", dir)
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	kind, err := parseTraceKind(traceKind)
	if err != nil {
		return err
	}

	// Assemble the roster: spawn a fresh fleet or adopt a running one.
	var members []fleet.Member
	if membersSpec != "" {
		if members, err = parseMembers(membersSpec); err != nil {
			return err
		}
	} else if spawn {
		sp := &fleet.Spawner{BinDir: bin, Dir: dir, Logf: log.Printf, ExtraArgs: daemonFlags}
		defer sp.Stop(5 * time.Second)
		if members, err = sp.SpawnMix(rotation(mix, n)); err != nil {
			return err
		}
	} else {
		return fmt.Errorf("nothing to supervise: pass -spawn or -members")
	}
	if err := fleet.WaitHealthy(ctx, members, 30*time.Second); err != nil {
		return err
	}
	log.Printf("incfleetd: %d members healthy", len(members))

	sched := fleet.DefaultSchedulerConfig(k)
	if hold > 0 {
		sched.Hold = hold
	}
	wallScale := (24 * time.Hour).Seconds() / wall.Seconds()
	ctrl, err := fleet.NewController(fleet.Config{
		Members:   members,
		Sched:     sched,
		Period:    period,
		RateScale: scale,
		WallScale: wallScale,
	})
	if err != nil {
		return err
	}
	if err := ctrl.AdoptAll(ctx); err != nil {
		return err
	}
	log.Printf("incfleetd: fleet adopted dark (k=%d, rate scale %.0fx, wall scale %.0fx)",
		k, scale, wallScale)

	if listen != "" {
		ln, err := net.Listen("tcp", listen)
		if err != nil {
			return fmt.Errorf("listen %s: %w", listen, err)
		}
		srv := &http.Server{Handler: ctrl.Handler()}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		log.Printf("incfleetd: GET http://%s/v1/fleet", ln.Addr())
	}

	runCtx, stopCtrl := context.WithCancel(ctx)
	defer stopCtrl()
	go ctrl.Run(runCtx)

	// Per-member day traces: the same diurnal envelope, each member's
	// own volatility realization.
	rng := rand.New(rand.NewSource(seed))
	traces := make(map[string]cluster.LoadTrace, len(members))
	for _, m := range members {
		memberRng := rand.New(rand.NewSource(rng.Int63()))
		traces[m.Name] = cluster.DynamoLoad(memberRng, kind, night, peak, 24*3600)
	}

	loadgen := filepath.Join(bin, "incloadgen")
	if _, err := exec.LookPath(loadgen); err != nil {
		return fmt.Errorf("incloadgen not found at %s (build it next to incfleetd or pass -bin)", loadgen)
	}
	log.Printf("incfleetd: replaying 24h of demand over %v (%d members, %.0f-%.0f modeled kpps)",
		wall, len(members), night, peak)
	workers, replayErr := fleet.Replay(ctx, fleet.ReplayConfig{
		Bin:       loadgen,
		Wall:      wall,
		Segments:  segments,
		RateScale: scale,
		Dir:       dir,
		Logf:      log.Printf,
	}, members, traces)
	if replayErr != nil {
		log.Printf("incfleetd: replay: %v", replayErr)
	}

	// One final tick so the post-replay state lands in the account,
	// then freeze the controller.
	ctrl.Tick(ctx)
	stopCtrl()

	rep := fleet.BuildReport(ctrl.Snapshot(), ctrl.Curve(), workers)
	if err := rep.WriteFile(reportPath); err != nil {
		return fmt.Errorf("write %s: %w", reportPath, err)
	}
	log.Printf("incfleetd: report -> %s", reportPath)
	log.Printf("incfleetd: lit max %d/%d, %d shifts, %d budget violations, %d concurrent shifts max",
		rep.Snapshot.MaxLit, rep.K, rep.Snapshot.Shifts,
		rep.Snapshot.BudgetViolations, rep.Snapshot.ConcurrentShiftsMax)
	log.Printf("incfleetd: traffic sent %d, answered %d, wrong %d",
		rep.SentTotal, rep.AnsweredTotal, rep.WrongAnswers)
	log.Printf("incfleetd: day energy: software-only %.3f kWh, on-demand %.3f kWh, saved %.3f kWh (%.1f%%)",
		rep.SoftwareOnlyKWhDay, rep.OnDemandKWhDay, rep.SavedKWhDay, rep.SavedPct)

	if replayErr != nil {
		return replayErr
	}
	if doAssert {
		if err := rep.Check(); err != nil {
			return err
		}
		log.Printf("incfleetd: all fleet assertions held")
	}
	return nil
}

// rotation fills n member kinds by cycling the -mix list.
func rotation(mix string, n int) []string {
	kinds := strings.Split(mix, ",")
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, strings.TrimSpace(kinds[i%len(kinds)]))
	}
	return out
}

func parseTraceKind(s string) (cluster.WorkloadKind, error) {
	switch s {
	case "rack", "mixed":
		return cluster.RackMixed, nil
	case "caching":
		return cluster.Caching, nil
	case "web":
		return cluster.WebServer, nil
	}
	return 0, fmt.Errorf("unknown -trace %q (want rack, caching or web)", s)
}

// parseMembers parses the adopt-mode roster: kind=ctrlAddr=dataAddr per
// entry, comma-separated.
func parseMembers(spec string) ([]fleet.Member, error) {
	var out []fleet.Member
	perKind := make(map[string]int)
	for _, entry := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(entry), "=")
		if len(fields) != 3 {
			return nil, fmt.Errorf("member %q: want kind=ctrlAddr=dataAddr", entry)
		}
		kind := fields[0]
		name := fmt.Sprintf("%s-%d", kind, perKind[kind])
		perKind[kind]++
		out = append(out, fleet.Member{Name: name, Kind: kind, Ctrl: fields[1], Data: fields[2]})
	}
	return out, nil
}
