package main

import (
	"encoding/binary"
	"log"
	"net"
	"sync"
	"time"

	"incod/internal/paxos"
	"incod/internal/simnet"
)

// node is shared UDP plumbing for the real-socket roles.
type node struct {
	conn net.PacketConn
	// observe meters each decoded message into the on-demand
	// orchestrator's rate counter.
	observe func()
}

func listen(addr string, observe func()) *node {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		log.Fatalf("incpaxosd: %v", err)
	}
	return &node{conn: conn, observe: observe}
}

func (n *node) send(to string, m paxos.Msg) {
	dst, err := net.ResolveUDPAddr("udp", to)
	if err != nil {
		log.Printf("incpaxosd: resolve %s: %v", to, err)
		return
	}
	if _, err := n.conn.WriteTo(paxos.Encode(m), dst); err != nil {
		log.Printf("incpaxosd: send to %s: %v", to, err)
	}
}

func (n *node) loop(handle func(m paxos.Msg, from net.Addr)) {
	buf := make([]byte, 64*1024)
	for {
		sz, from, err := n.conn.ReadFrom(buf)
		if err != nil {
			log.Printf("incpaxosd: read: %v", err)
			return
		}
		m, err := paxos.Decode(buf[:sz])
		if err != nil {
			continue
		}
		if n.observe != nil {
			n.observe()
		}
		handle(m, from)
	}
}

// --- acceptor -------------------------------------------------------------

type accState struct {
	promised uint32
	accepted bool
	vballot  uint32
	m        paxos.Msg
}

func runAcceptor(addr string, id uint16, learners []string, observe func()) {
	n := listen(addr, observe)
	log.Printf("incpaxosd: acceptor %d on %s, learners %v", id, n.conn.LocalAddr(), learners)
	states := make(map[uint64]*accState)
	var lastVoted uint64

	vote := func(inst uint64, st *accState, proposer string) {
		out := st.m
		out.Type = paxos.MsgPhase2B
		out.Instance = inst
		out.Ballot = st.vballot
		out.VBallot = st.vballot
		out.NodeID = id
		out.LastVoted = lastVoted
		for _, l := range learners {
			n.send(l, out)
		}
		n.send(proposer, out)
	}
	n.loop(func(m paxos.Msg, from net.Addr) {
		st, ok := states[m.Instance]
		if !ok {
			st = &accState{}
			states[m.Instance] = st
		}
		switch m.Type {
		case paxos.MsgPhase1A:
			if m.Ballot >= st.promised {
				st.promised = m.Ballot
			}
			resp := paxos.Msg{Type: paxos.MsgPhase1B, Instance: m.Instance,
				Ballot: st.promised, NodeID: id, LastVoted: lastVoted}
			if st.accepted {
				resp.VBallot = st.vballot
				resp.Value = st.m.Value
			}
			n.send(from.String(), resp)
		case paxos.MsgPhase2A:
			if st.accepted {
				vote(m.Instance, st, from.String())
				return
			}
			if m.Ballot < st.promised {
				n.send(from.String(), paxos.Msg{Type: paxos.MsgPhase1B, Instance: m.Instance,
					Ballot: st.promised, NodeID: id, LastVoted: lastVoted})
				return
			}
			st.promised = m.Ballot
			st.accepted = true
			st.vballot = m.Ballot
			st.m = m
			if m.Instance > lastVoted {
				lastVoted = m.Instance
			}
			vote(m.Instance, st, from.String())
		}
	})
}

// --- leader ---------------------------------------------------------------

func runLeader(addr string, ballot uint32, acceptors []string, observe func()) {
	n := listen(addr, observe)
	log.Printf("incpaxosd: leader on %s, ballot %d, acceptors %v (starting at sequence 1 per §9.2)",
		n.conn.LocalAddr(), ballot, acceptors)
	next := uint64(1)
	propose := func(m paxos.Msg) {
		for _, a := range acceptors {
			n.send(a, m)
		}
	}
	n.loop(func(m paxos.Msg, from net.Addr) {
		switch m.Type {
		case paxos.MsgClientRequest:
			inst := next
			next++
			clientAddr := m.ClientAddr
			if clientAddr == "" {
				clientAddr = simnet.Addr(from.String())
			}
			propose(paxos.Msg{Type: paxos.MsgPhase2A, Instance: inst, Ballot: ballot,
				ClientID: m.ClientID, Seq: m.Seq, ClientAddr: clientAddr, Value: m.Value})
		case paxos.MsgPhase2B, paxos.MsgPhase1B:
			if m.LastVoted+1 > next {
				next = m.LastVoted + 1
			}
		case paxos.MsgGapRequest:
			propose(paxos.Msg{Type: paxos.MsgPhase2A, Instance: m.Instance, Ballot: ballot, Value: paxos.NoOp})
		}
	})
}

// --- learner --------------------------------------------------------------

func runLearner(addr string, quorum int, leader string, observe func()) {
	n := listen(addr, observe)
	log.Printf("incpaxosd: learner on %s, quorum %d", n.conn.LocalAddr(), quorum)
	votes := make(map[uint64]map[uint16]paxos.Msg)
	decided := make(map[uint64]bool)
	var highest uint64
	var mu sync.Mutex

	if leader != "" {
		go func() {
			tick := time.NewTicker(100 * time.Millisecond)
			defer tick.Stop()
			for range tick.C {
				mu.Lock()
				for inst := uint64(1); inst < highest; inst++ {
					if !decided[inst] {
						n.send(leader, paxos.Msg{Type: paxos.MsgGapRequest, Instance: inst})
					}
				}
				mu.Unlock()
			}
		}()
	}
	n.loop(func(m paxos.Msg, from net.Addr) {
		if m.Type != paxos.MsgPhase2B {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if decided[m.Instance] {
			return
		}
		byNode := votes[m.Instance]
		if byNode == nil {
			byNode = make(map[uint16]paxos.Msg)
			votes[m.Instance] = byNode
		}
		byNode[m.NodeID] = m
		var best uint32
		for _, v := range byNode {
			if v.VBallot > best {
				best = v.VBallot
			}
		}
		agree := 0
		var chosen paxos.Msg
		for _, v := range byNode {
			if v.VBallot == best {
				agree++
				chosen = v
			}
		}
		if agree < quorum {
			return
		}
		decided[m.Instance] = true
		delete(votes, m.Instance)
		if m.Instance > highest {
			highest = m.Instance
		}
		if chosen.ClientAddr != "" {
			n.send(string(chosen.ClientAddr), paxos.Msg{Type: paxos.MsgDecision,
				Instance: m.Instance, ClientID: chosen.ClientID, Seq: chosen.Seq, Value: chosen.Value})
		}
	})
}

// --- client ---------------------------------------------------------------

func runClient(leader string, rate float64, duration, timeout time.Duration, observe func()) {
	if leader == "" {
		log.Fatal("incpaxosd: client needs -leader")
	}
	n := listen(":0", observe)
	self := n.conn.LocalAddr().String()
	log.Printf("incpaxosd: client on %s -> leader %s, %.0f req/s for %v", self, leader, rate, duration)

	var mu sync.Mutex
	pending := make(map[uint64]time.Time)
	var decidedCount, retries uint64
	var totalLat time.Duration

	go n.loop(func(m paxos.Msg, from net.Addr) {
		if m.Type != paxos.MsgDecision {
			return
		}
		mu.Lock()
		if sent, ok := pending[m.Seq]; ok {
			delete(pending, m.Seq)
			decidedCount++
			totalLat += time.Since(sent)
		}
		mu.Unlock()
	})

	var seq uint64
	submit := func() {
		mu.Lock()
		seq++
		s := seq
		pending[s] = time.Now()
		mu.Unlock()
		v := make([]byte, 8)
		binary.BigEndian.PutUint64(v, s)
		n.send(leader, paxos.Msg{Type: paxos.MsgClientRequest, Seq: s,
			ClientAddr: simnet.Addr(self), Value: v})
		go func(s uint64) {
			tick := time.NewTicker(timeout)
			defer tick.Stop()
			for range tick.C {
				mu.Lock()
				_, still := pending[s]
				if still {
					pending[s] = pending[s] // keep first-send time
					retries++
				}
				mu.Unlock()
				if !still {
					return
				}
				v := make([]byte, 8)
				binary.BigEndian.PutUint64(v, s)
				n.send(leader, paxos.Msg{Type: paxos.MsgClientRequest, Seq: s,
					ClientAddr: simnet.Addr(self), Value: v})
			}
		}(s)
	}

	gap := time.Duration(float64(time.Second) / rate)
	deadline := time.Now().Add(duration)
	for time.Now().Before(deadline) {
		submit()
		time.Sleep(gap)
	}
	time.Sleep(500 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	avg := time.Duration(0)
	if decidedCount > 0 {
		avg = totalLat / time.Duration(decidedCount)
	}
	log.Printf("incpaxosd: client done: %d decided, %d outstanding, %d retries, avg latency %v",
		decidedCount, len(pending), retries, avg)
}
