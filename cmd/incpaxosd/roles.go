package main

import (
	"encoding/binary"
	"log"
	"net"
	"sync"
	"time"

	"incod/internal/core"
	"incod/internal/daemon"
	"incod/internal/dataplane"
	"incod/internal/nictier"
	"incod/internal/paxos"
	"incod/internal/simnet"
	"incod/internal/telemetry"
)

// The protocol logic lives in internal/paxos (LiveAcceptor, LiveLeader,
// LiveLearner); this file only wires sockets, senders and the dataplane
// engine around it.

func listen(addr string) net.PacketConn {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		log.Fatalf("incpaxosd: %v", err)
	}
	return conn
}

// datagramWriter is the outbound side a role needs: net.PacketConn and
// *dataplane.Engine (whose WriteTo transmits from the serving socket,
// shard 0's in batched mode) both satisfy it.
type datagramWriter interface {
	WriteTo(b []byte, to net.Addr) (int, error)
}

// sender returns a paxos.Sender transmitting through w, caching address
// resolution per destination and encoding into pooled buffers (UDP
// writes copy into the kernel synchronously, so a buffer is free again
// when WriteTo returns — fan-out stops allocating per message without
// serializing concurrent shard workers' sends). w is read through the
// pointer on every send, so a role can hand out its sender before the
// serving engine exists (the engine needs the handler, the handler
// needs the sender).
func sender(w *datagramWriter) paxos.Sender {
	var mu sync.Mutex
	cache := map[string]*net.UDPAddr{}
	bufs := sync.Pool{New: func() any {
		b := make([]byte, 0, 2048)
		return &b
	}}
	return func(to string, m paxos.Msg) {
		mu.Lock()
		dst := cache[to]
		mu.Unlock()
		if dst == nil {
			var err error
			if dst, err = net.ResolveUDPAddr("udp", to); err != nil {
				log.Printf("incpaxosd: resolve %s: %v", to, err)
				return
			}
			mu.Lock()
			cache[to] = dst
			mu.Unlock()
		}
		if *w == nil {
			log.Printf("incpaxosd: send to %s before the engine is up; dropped", to)
			return
		}
		bp := bufs.Get().(*[]byte)
		*bp = paxos.AppendMsg((*bp)[:0], m)
		_, err := (*w).WriteTo(*bp, dst)
		bufs.Put(bp)
		if err != nil {
			log.Printf("incpaxosd: send to %s: %v", to, err)
		}
	}
}

// serverRole is a built server role: its engine, any extra teardown to
// run before the engine drains, and — when the role supports offload —
// the placement-bearing service for the orchestrator.
type serverRole struct {
	eng  *dataplane.Engine
	stop func()
	svc  core.Service
}

// buildEngine opens the role's serving engine per the shared I/O flags
// and publishes it as the role's outbound writer.
func buildEngine(io daemon.EngineOptions, w *datagramWriter, h dataplane.Handler, shards int) *dataplane.Engine {
	eng, err := daemon.ListenEngine(io, h, dataplane.Config{Name: "incpaxosd", Shards: shards})
	if err != nil {
		log.Fatalf("incpaxosd: %v", err)
	}
	*w = eng
	return eng
}

func newAcceptor(io daemon.EngineOptions, id uint16, learners []string, shards int, useTier bool) serverRole {
	var w datagramWriter
	h := paxos.NewLiveAcceptor(id, learners, sender(&w))
	eng := buildEngine(io, &w, h, shards)
	r := serverRole{eng: eng}
	mode := "advisory"
	if useTier {
		r.svc = nictier.NewService("paxos", eng, nictier.NewPaxosAcceptor(h))
		mode = "nictier"
	}
	log.Printf("incpaxosd: acceptor %d on %s (%s), learners %v", id, eng.LocalAddr(), mode, learners)
	return r
}

func newLeader(io daemon.EngineOptions, ballot uint32, acceptors []string, shards int) serverRole {
	var w datagramWriter
	h := paxos.NewLiveLeader(ballot, acceptors, sender(&w))
	eng := buildEngine(io, &w, h, shards)
	log.Printf("incpaxosd: leader on %s, ballot %d, acceptors %v (starting at sequence 1 per §9.2)",
		eng.LocalAddr(), ballot, acceptors)
	return serverRole{eng: eng}
}

func newLearner(io daemon.EngineOptions, quorum int, leader string, shards int) serverRole {
	var w datagramWriter
	h := paxos.NewLiveLearner(quorum, leader, sender(&w))
	eng := buildEngine(io, &w, h, shards)
	h.Start(100 * time.Millisecond)
	log.Printf("incpaxosd: learner on %s, quorum %d", eng.LocalAddr(), quorum)
	return serverRole{eng: eng, stop: h.Stop}
}

// runClient submits requests at rate for duration, retrying per §9.2 on
// timeout, and reports decided count, retries and latency percentiles.
// Decisions arrive through a single-shard engine so transient socket
// errors can't kill the receive path.
func runClient(leader string, rate float64, duration, timeout time.Duration, svc *daemon.ManagedService) {
	if leader == "" {
		log.Fatal("incpaxosd: client needs -leader")
	}
	conn := listen(":0")
	var w datagramWriter = conn
	send := sender(&w)
	self := conn.LocalAddr().String()
	log.Printf("incpaxosd: client on %s -> leader %s, %.0f req/s for %v", self, leader, rate, duration)

	var mu sync.Mutex
	pending := make(map[uint64]time.Time)
	var decidedCount, retries uint64
	hist := telemetry.NewHistogram()

	eng := dataplane.New(conn, dataplane.HandlerFunc(func(in []byte, _ *[]byte) ([]byte, bool) {
		m, err := paxos.Decode(in)
		if err != nil || m.Type != paxos.MsgDecision {
			return nil, false
		}
		mu.Lock()
		if sent, ok := pending[m.Seq]; ok {
			delete(pending, m.Seq)
			decidedCount++
			hist.Observe(time.Since(sent))
		}
		mu.Unlock()
		return nil, false
	}), dataplane.Config{Name: "incpaxosd", Shards: 1})
	eng.Start()
	defer eng.Close()
	if svc != nil {
		svc.UseCounter(eng.Handled)
	}

	request := func(s uint64) paxos.Msg {
		v := make([]byte, 8)
		binary.BigEndian.PutUint64(v, s)
		return paxos.Msg{Type: paxos.MsgClientRequest, Seq: s,
			ClientAddr: simnet.Addr(self), Value: v}
	}
	var seq uint64
	submit := func() {
		mu.Lock()
		seq++
		s := seq
		pending[s] = time.Now()
		mu.Unlock()
		send(leader, request(s))
		go func(s uint64) {
			tick := time.NewTicker(timeout)
			defer tick.Stop()
			for range tick.C {
				mu.Lock()
				_, still := pending[s]
				if still {
					retries++
				}
				mu.Unlock()
				if !still {
					return
				}
				send(leader, request(s))
			}
		}(s)
	}

	gap := time.Duration(float64(time.Second) / rate)
	deadline := time.Now().Add(duration)
	for time.Now().Before(deadline) {
		submit()
		time.Sleep(gap)
	}
	time.Sleep(500 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	log.Printf("incpaxosd: client done: %d decided, %d outstanding, %d retries, latency p50=%v p99=%v",
		decidedCount, len(pending), retries, hist.Median(), hist.P99())
}
