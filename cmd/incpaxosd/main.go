// Command incpaxosd runs one Paxos role over real UDP, using the same
// wire format and protocol rules as the simulated deployment — including
// the §9.2 hand-off machinery (last-voted piggybacks, fresh leaders
// starting at sequence 1, client retries). The server roles serve through
// the shared sharded dataplane (internal/dataplane), so transient socket
// errors are survived and per-shard stats appear on the control API. A
// full system on one machine:
//
//	incpaxosd -role acceptor -id 0 -addr :7000 -learners localhost:7100 &
//	incpaxosd -role acceptor -id 1 -addr :7001 -learners localhost:7100 &
//	incpaxosd -role acceptor -id 2 -addr :7002 -learners localhost:7100 &
//	incpaxosd -role learner  -addr :7100 -quorum 2 -leader localhost:7200 &
//	incpaxosd -role leader   -addr :7200 -ballot 1 -ctrl :8082 \
//	    -acceptors localhost:7000,localhost:7001,localhost:7002 &
//	incpaxosd -role client   -leader localhost:7200 -rate 1000 -duration 5s
//
// Shifting leadership to a second leader process (higher -ballot) and
// re-pointing clients at it reproduces the Figure 7 hand-off on real
// sockets. Every role serves the same /v1 control API as the other
// daemons when -ctrl is set, metering its own message stream. An
// acceptor started with -nictier additionally attaches the emulated
// P4xos fast path: policy-driven shifts hand the acceptor's vote state
// between the host role and the NIC tier for real.
package main

import (
	"flag"
	"log"
	"os"
	"strings"
	"time"

	"incod/internal/core"
	"incod/internal/daemon"
	"incod/internal/power"
)

func main() {
	role := flag.String("role", "", "acceptor | leader | learner | client")
	addr := flag.String("addr", ":0", "UDP listen address")
	shards := flag.Int("shards", 1, "dataplane shard workers (role state is serialized either way; >1 only parallelizes decode)")
	sockets := flag.Int("sockets", 0,
		"per-shard SO_REUSEPORT sockets with batched recvmmsg/sendmmsg I/O (0 = classic single-reader engine; batched mode runs one shard per socket, Linux)")
	rxBatch := flag.Int("rxbatch", 0, "datagrams per receive batch in batched mode (0 = default 32)")
	txBatch := flag.Int("txbatch", 0, "datagrams per send batch in batched mode (0 = default 32)")
	bufCache := flag.Int("bufcache", 0, "per-worker private receive-buffer free list size in batched mode (0 = rxbatch, negative disables)")
	engineMode := flag.String("engine", "batched",
		"batched-mode transport: batched (recvmmsg/sendmmsg) | uring (io_uring multishot recv, falls back to batched when the kernel can't) | single (portable fallback)")
	busyPoll := flag.Int("busypoll", 0, "SO_BUSY_POLL microseconds on the serving sockets (0 = off; trades CPU for latency)")
	pin := flag.Bool("pin", false, "pin each batched shard worker to a CPU via sched_setaffinity")
	gsoTx := flag.Bool("gsotx", false, "coalesce same-destination replies into UDP_SEGMENT trains in batched mode (degrades to per-datagram sends on kernels without UDP_SEGMENT)")
	id := flag.Int("id", 0, "acceptor id")
	ballot := flag.Int("ballot", 1, "leader ballot (epoch); a replacement leader must use a higher one")
	acceptors := flag.String("acceptors", "", "comma-separated acceptor addresses (leader)")
	learners := flag.String("learners", "", "comma-separated learner addresses (acceptor)")
	leader := flag.String("leader", "", "leader address (learner: gap requests; client: request target)")
	quorum := flag.Int("quorum", 2, "learner quorum size")
	rate := flag.Float64("rate", 100, "client request rate (req/s)")
	duration := flag.Duration("duration", 5*time.Second, "client run duration")
	timeout := flag.Duration("timeout", 100*time.Millisecond, "client retry timeout (the §9.2 knob)")
	crossKpps := flag.Float64("crossover", 150, "software/hardware crossover (kpps)")
	policy := flag.String("policy", "threshold",
		"placement policy: "+strings.Join(core.PolicyNames(), " | "))
	ctrl := flag.String("ctrl", "", "control-plane HTTP address (e.g. :8082); empty disables")
	useTier := flag.Bool("nictier", false,
		"acceptor role: attach the emulated P4xos acceptor fast path; policy shifts hand the acceptor state between host and NIC")
	flag.Parse()

	startCtrl := func(tierSvc core.Service, ready func() bool) (*daemon.Orchestrator, *daemon.ManagedService, *daemon.CtrlServer) {
		orch, svc, ctrlSrv, err := daemon.StartControlPlane(daemon.StartOptions{
			Name: "paxos", Policy: *policy, CrossKpps: *crossKpps,
			Curve: power.LibpaxosLeader, CtrlAddr: *ctrl, Service: tierSvc,
			Ready: ready,
		})
		if err != nil {
			log.Fatalf("incpaxosd: %v", err)
		}
		if ctrlSrv != nil {
			log.Printf("incpaxosd: control plane on http://%s/v1/services", ctrlSrv.Addr())
		}
		return orch, svc, ctrlSrv
	}

	if *role == "client" {
		orch, svc, ctrlSrv := startCtrl(nil, nil)
		defer orch.Close()
		// The client has no engine to drain; a signal mid-run still
		// stops the control plane and exits cleanly.
		daemon.OnShutdown("incpaxosd", ctrlSrv, orch, func() { os.Exit(0) })
		runClient(*leader, *rate, *duration, *timeout, svc)
		daemon.GracefulStop("incpaxosd", ctrlSrv, orch)
		return
	}

	if *useTier && *role != "acceptor" {
		log.Printf("incpaxosd: -nictier only offloads the acceptor role (P4xos, §3.2); ignoring for %q", *role)
	}
	io := daemon.EngineOptions{Addr: *addr, Sockets: *sockets, RxBatch: *rxBatch, TxBatch: *txBatch,
		BufCache: *bufCache, Engine: *engineMode, BusyPollUs: *busyPoll, Pin: *pin, GSOTx: *gsoTx}
	var r serverRole
	switch *role {
	case "acceptor":
		r = newAcceptor(io, uint16(*id), splitAddrs(*learners), *shards, *useTier)
	case "leader":
		r = newLeader(io, uint32(*ballot), splitAddrs(*acceptors), *shards)
	case "learner":
		r = newLearner(io, *quorum, *leader, *shards)
	default:
		log.Println("incpaxosd: -role must be acceptor, leader, learner or client")
		flag.Usage()
		os.Exit(2)
	}

	orch, svc, ctrlSrv := startCtrl(r.svc, r.eng.Running)
	defer orch.Close()

	svc.UseCounter(r.eng.Handled)
	if err := orch.AttachDataplane("paxos", r.eng); err != nil {
		log.Fatalf("incpaxosd: %v", err)
	}
	// Graceful exit: stop the role's side machinery (e.g. the learner's
	// gap scanner), then drain the dataplane, unblocking Run below.
	daemon.OnShutdown("incpaxosd", ctrlSrv, orch, func() {
		if r.stop != nil {
			r.stop()
		}
		r.eng.Close()
	})

	r.eng.Run()
	log.Printf("incpaxosd: shut down cleanly")
}

func splitAddrs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
