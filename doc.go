// Package incod is a reproduction of "The Case For In-Network Computing
// On Demand" (Tokusashi, Dang, Pedone, Soulé, Zilberman — EuroSys 2019):
// a power-vs-performance study of in-network computing (KVS, Paxos, DNS on
// NetFPGA SUME and a Tofino-class ASIC) and the on-demand controllers that
// shift those services between host software and network hardware.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory), runnable daemons under cmd/, and worked examples under
// examples/. The benchmarks in this package regenerate every table and
// figure in the paper's evaluation; EXPERIMENTS.md records paper-vs-
// measured results.
package incod
