// Package incod is a reproduction of "The Case For In-Network Computing
// On Demand" (Tokusashi, Dang, Pedone, Soulé, Zilberman — EuroSys 2019):
// a power-vs-performance study of in-network computing (KVS, Paxos, DNS on
// NetFPGA SUME and a Tofino-class ASIC) and the on-demand controllers that
// shift those services between host software and network hardware.
//
// The control plane is organized around three abstractions in
// internal/core: Service (a workload with a fallible Shift and a
// TransitionCost hook for the §9.2 transition tasks), Policy (the §9.1
// decision kernels — mirrored-threshold, power-aware, static pin — as
// pluggable Observe(Sample) Decision rules), and Controller (drives a
// Policy in simulated time). internal/daemon runs the same Policy code on
// wall-clock request streams via a multi-service Orchestrator, exposed to
// operators through the versioned /v1 HTTP control API served by every
// daemon (see README.md).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory), runnable daemons under cmd/, and worked examples under
// examples/. The benchmarks in this package regenerate every table and
// figure in the paper's evaluation; EXPERIMENTS.md records paper-vs-
// measured results.
package incod
