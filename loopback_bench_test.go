package incod

// Per-protocol loopback throughput benches: each serves its real daemon
// handler through the batched per-shard-socket engine (reuseport +
// recvmmsg/sendmmsg, the incdnsd/inckvsd/incpaxosd -sockets mode) on
// 127.0.0.1 and reports achieved reply kpps from windowed batched
// clients — the numbers scripts/bench.sh commits to the BENCH_*.json
// trajectory. The client I/O cost is identical across protocols, so the
// spread between them is the handlers'.

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"incod/internal/dataplane"
	"incod/internal/dns"
	"incod/internal/kvs"
	"incod/internal/memcache"
	"incod/internal/netio"
	"incod/internal/paxos"
)

const (
	loopbackShards  = 4
	loopbackClients = 4 * loopbackShards
)

// benchProtoLoopback blasts reqs (cycled per client) at a batched engine
// serving h and reports achieved reply throughput. Each client keeps one
// 32-message window in flight so server-side loss costs a bounded
// timeout instead of skewing the numbers.
func benchProtoLoopback(b *testing.B, h dataplane.Handler, cfg dataplane.Config, reqs [][]byte) {
	conns, err := netio.ListenReusePortGroup("udp4", "127.0.0.1:0", loopbackShards)
	if err != nil {
		b.Skipf("reuseport group unavailable: %v", err)
	}
	e := dataplane.NewBatched(conns, h, cfg)
	e.Start()
	defer e.Close()
	addr := e.LocalAddr().String()
	per := b.N/loopbackClients + 1
	var replies atomic.Uint64

	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < loopbackClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("udp", addr)
			if err != nil {
				b.Error(err)
				return
			}
			defer conn.Close()
			bc := netio.NewBatchConn(conn.(*net.UDPConn))
			const window = 32
			tx := make([]netio.Message, 0, window)
			rx := make([]netio.Message, window)
			for i := range rx {
				rx[i].Buf = make([]byte, 2048)
			}
			next := 0
			for sent := 0; sent < per; {
				n := min(window, per-sent)
				tx = tx[:0]
				for k := 0; k < n; k++ {
					r := reqs[next%len(reqs)]
					next++
					tx = append(tx, netio.Message{Buf: r, N: len(r)})
				}
				if _, err := bc.WriteBatch(tx); err != nil {
					b.Error(err)
					return
				}
				sent += n
				got := 0
				deadline := time.Now().Add(200 * time.Millisecond)
				for got < n {
					_ = bc.SetReadDeadline(deadline)
					m, err := bc.ReadBatch(rx)
					if err != nil {
						break // timeout: count the loss and move on
					}
					got += m
				}
				replies.Add(uint64(got))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed > 0 {
		b.ReportMetric(float64(replies.Load())/elapsed.Seconds()/1000, "achieved-kpps")
	}
	b.ReportMetric(float64(replies.Load())/float64(loopbackClients*per)*100, "answered-%")
}

// BenchmarkLoopbackBatchedKVS: framed memcached GET hits through the
// batched engine, kvs.Handler.HandleBatch and ShardedStore.GetBatch.
func BenchmarkLoopbackBatchedKVS(b *testing.B) {
	h := kvs.NewHandler(kvs.NewShardedStore(loopbackShards, 0))
	scratch := make([]byte, 0, 4096)
	reqs := make([][]byte, 64)
	for i := range reqs {
		key := fmt.Sprintf("key-%d", i)
		set := memcache.EncodeFrame(memcache.Frame{RequestID: 1, Total: 1},
			memcache.EncodeRequest(memcache.Request{Op: memcache.OpSet, Key: key, Value: []byte("value-abcdef")}))
		if _, ok := h.HandleDatagram(set, &scratch); !ok {
			b.Fatal("preload failed")
		}
		reqs[i] = memcache.EncodeFrame(memcache.Frame{RequestID: uint16(i), Total: 1},
			memcache.EncodeRequest(memcache.Request{Op: memcache.OpGet, Key: key}))
	}
	benchProtoLoopback(b, h, dataplane.Config{Name: "bench-kvs"}, reqs)
}

// BenchmarkLoopbackBatchedDNS: mixed-case A queries answered from the
// precompiled wire cache through dns.Handler.HandleBatch.
func BenchmarkLoopbackBatchedDNS(b *testing.B) {
	zone := dns.NewZone()
	zone.PopulateSequential(64)
	h := dns.NewHandler(zone)
	reqs := make([][]byte, 64)
	for i := range reqs {
		name := dns.SequentialName(i)
		if i%2 == 1 {
			name = "HOST" + name[4:] // exercise the fold path under load
		}
		q, err := dns.Encode(dns.NewQuery(uint16(i), name))
		if err != nil {
			b.Fatal(err)
		}
		reqs[i] = q
	}
	benchProtoLoopback(b, h, dataplane.Config{Name: "bench-dns", MaxDatagram: 4096}, reqs)
}

// BenchmarkLoopbackBatchedPaxos: steady-state Phase2A re-votes answered
// with 2Bs through paxos.LiveAcceptor.HandleBatch (no learner fan-out,
// so the measured path is decode -> table -> encode).
func BenchmarkLoopbackBatchedPaxos(b *testing.B) {
	a := paxos.NewLiveAcceptor(1, nil, func(string, paxos.Msg) {})
	scratch := make([]byte, 0, 4096)
	reqs := make([][]byte, 64)
	for i := range reqs {
		reqs[i] = paxos.Encode(paxos.Msg{Type: paxos.MsgPhase2A, Instance: uint64(i + 1),
			Ballot: 3, Seq: uint64(i), ClientAddr: "client-1:2345", Value: []byte("value-of-modest-size")})
		if _, ok := a.HandleDatagram(reqs[i], &scratch); !ok {
			b.Fatal("seed vote failed")
		}
	}
	benchProtoLoopback(b, a, dataplane.Config{Name: "bench-paxos", MaxDatagram: 4096}, reqs)
}
