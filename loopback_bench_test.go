package incod

// Per-protocol loopback throughput benches: each serves its real daemon
// handler through the batched per-shard-socket engine (reuseport +
// recvmmsg/sendmmsg, the incdnsd/inckvsd/incpaxosd -sockets mode) on
// 127.0.0.1 and reports achieved reply kpps from windowed batched
// clients — the numbers scripts/bench.sh commits to the BENCH_*.json
// trajectory. The client I/O cost is identical across protocols, so the
// spread between them is the handlers'.

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"incod/internal/dataplane"
	"incod/internal/dns"
	"incod/internal/kvs"
	"incod/internal/memcache"
	"incod/internal/netio"
	"incod/internal/paxos"
)

const (
	loopbackShards  = 4
	loopbackClients = 4 * loopbackShards
)

// benchProtoLoopback blasts reqs (cycled per client) at a batched engine
// serving h through the named netio backend ("mmsg" or "uring") and
// reports achieved reply throughput. Each client keeps one 32-message
// window in flight so server-side loss costs a bounded timeout instead
// of skewing the numbers. The clients always use the mmsg transport, so
// the spread between backends is the server's alone.
func benchProtoLoopback(b *testing.B, backend string, h dataplane.Handler, cfg dataplane.Config, reqs [][]byte) {
	benchProtoLoopbackTx(b, backend, false, h, cfg, reqs)
}

// benchProtoLoopbackTx is benchProtoLoopback with the train-TX mode: when
// gsoTx is set the server engine coalesces same-destination replies into
// UDP_SEGMENT trains (dataplane.Config.GSOTx) and each client packs its
// whole request window into one train (requests must be uniform-size —
// the equal-segment precondition), so both directions ride one send
// per window instead of one per datagram. The replies still arrive at
// the GRO-less client socket as individual datagrams, so answered-%
// accounting is identical across modes.
func benchProtoLoopbackTx(b *testing.B, backend string, gsoTx bool, h dataplane.Handler, cfg dataplane.Config, reqs [][]byte) {
	reqLen := len(reqs[0])
	if gsoTx {
		if err := netio.ProbeGSO(); err != nil {
			b.Skipf("UDP GSO unavailable: %v", err)
		}
		for i, r := range reqs {
			if len(r) != reqLen {
				b.Fatalf("req %d is %d bytes, want uniform %d (GSO trains need equal-size segments)", i, len(r), reqLen)
			}
		}
		cfg.GSOTx = true
	}
	e := startLoopbackEngine(b, backend, h, cfg)
	defer e.Close()
	addr := e.LocalAddr().String()
	per := b.N/loopbackClients + 1
	var replies atomic.Uint64

	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < loopbackClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("udp", addr)
			if err != nil {
				b.Error(err)
				return
			}
			defer conn.Close()
			bc := netio.NewBatchConn(conn.(*net.UDPConn))
			const window = 32
			tx := make([]netio.Message, 0, window)
			train := make([]byte, 0, window*reqLen)
			rx := make([]netio.Message, window)
			for i := range rx {
				rx[i].Buf = make([]byte, 2048)
			}
			next := 0
			for sent := 0; sent < per; {
				n := min(window, per-sent)
				tx = tx[:0]
				if gsoTx {
					train = train[:0]
					for k := 0; k < n; k++ {
						train = append(train, reqs[next%len(reqs)]...)
						next++
					}
					tx = append(tx, netio.Message{Buf: train, N: len(train), SegSize: reqLen})
				} else {
					for k := 0; k < n; k++ {
						r := reqs[next%len(reqs)]
						next++
						tx = append(tx, netio.Message{Buf: r, N: len(r)})
					}
				}
				if _, err := bc.WriteBatch(tx); err != nil {
					b.Error(err)
					return
				}
				sent += n
				got := 0
				deadline := time.Now().Add(200 * time.Millisecond)
				for got < n {
					_ = bc.SetReadDeadline(deadline)
					m, err := bc.ReadBatch(rx)
					if err != nil {
						break // timeout: count the loss and move on
					}
					got += m
				}
				replies.Add(uint64(got))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if gsoTx {
		// The coalescing evidence: wire datagrams per reply-train send.
		st := e.Snapshot()
		b.ReportMetric(st.TxSegsPerTrain, "tx-segs-per-train")
	}
	if elapsed > 0 {
		b.ReportMetric(float64(replies.Load())/elapsed.Seconds()/1000, "achieved-kpps")
	}
	b.ReportMetric(float64(replies.Load())/float64(loopbackClients*per)*100, "answered-%")
}

// startLoopbackEngine starts a batched engine serving h on loopback
// shards through the named netio backend, skipping the bench when the
// backend is unavailable on this host.
func startLoopbackEngine(b *testing.B, backend string, h dataplane.Handler, cfg dataplane.Config) *dataplane.Engine {
	conns, err := netio.ListenReusePortGroup("udp4", "127.0.0.1:0", loopbackShards)
	if err != nil {
		b.Skipf("reuseport group unavailable: %v", err)
	}
	var e *dataplane.Engine
	if backend == "uring" {
		if err := netio.ProbeUring(); err != nil {
			for _, c := range conns {
				c.Close()
			}
			b.Skipf("io_uring unavailable: %v", err)
		}
		bcs := make([]netio.BatchConn, len(conns))
		for i, c := range conns {
			bc, err := netio.NewUringConn(c, netio.UringConfig{BufSize: 4096})
			if err != nil {
				b.Fatal(err)
			}
			bcs[i] = bc
		}
		e = dataplane.NewBatchedConns(conns, bcs, h, cfg)
	} else {
		e = dataplane.NewBatched(conns, h, cfg)
	}
	e.Start()
	return e
}

// BenchmarkLoopbackBatchedKVS: framed memcached GET hits through the
// batched engine, kvs.Handler.HandleBatch and ShardedStore.GetBatch.
func BenchmarkLoopbackBatchedKVS(b *testing.B) { benchKVSLoopback(b, "mmsg") }

// BenchmarkLoopbackUringKVS is the same serving path with the io_uring
// transport under the engine.
func BenchmarkLoopbackUringKVS(b *testing.B) { benchKVSLoopback(b, "uring") }

func benchKVSLoopback(b *testing.B, backend string) {
	h := kvs.NewHandler(kvs.NewShardedStore(loopbackShards, 0))
	scratch := make([]byte, 0, 4096)
	reqs := make([][]byte, 64)
	for i := range reqs {
		key := fmt.Sprintf("key-%d", i)
		set := memcache.EncodeFrame(memcache.Frame{RequestID: 1, Total: 1},
			memcache.EncodeRequest(memcache.Request{Op: memcache.OpSet, Key: key, Value: []byte("value-abcdef")}))
		if _, ok := h.HandleDatagram(set, &scratch); !ok {
			b.Fatal("preload failed")
		}
		reqs[i] = memcache.EncodeFrame(memcache.Frame{RequestID: uint16(i), Total: 1},
			memcache.EncodeRequest(memcache.Request{Op: memcache.OpGet, Key: key}))
	}
	benchProtoLoopback(b, backend, h, dataplane.Config{Name: "bench-kvs"}, reqs)
}

// BenchmarkLoopbackBatchedKVSIngest: write-heavy memcached ingest — each
// client window is 31 "set ... noreply" datagrams plus one synchronizing
// GET, so the server receives 32 datagrams for every reply it sends and
// the client's window stays flow-controlled without per-set acks. The
// clients push each window as a single UDP GSO train (one send syscall,
// kernel-segmented at delivery) when the kernel allows, so the loadgen
// stops bottlenecking on per-datagram send cost. This is the
// receive-dominated shape where the uring backend's multishot RECVMSG
// amortization pays off: unlike the echo benches above, server TX is
// 1/32nd of the traffic instead of half, and on the uring leg the GSO
// trains arrive GRO-coalesced — one completion (and one kernel
// delivery) per 31-set train instead of per datagram.
func BenchmarkLoopbackBatchedKVSIngest(b *testing.B) { benchKVSIngestLoopback(b, "mmsg") }

// BenchmarkLoopbackUringKVSIngest is the same ingest workload with the
// io_uring transport under the engine.
func BenchmarkLoopbackUringKVSIngest(b *testing.B) { benchKVSIngestLoopback(b, "uring") }

func benchKVSIngestLoopback(b *testing.B, backend string) {
	h := kvs.NewHandler(kvs.NewShardedStore(loopbackShards, 0))
	scratch := make([]byte, 0, 4096)
	for c := 0; c < loopbackClients; c++ {
		set := memcache.EncodeRequest(memcache.Request{
			Op: memcache.OpSet, Key: fmt.Sprintf("sync-%d", c), Value: []byte("s")})
		if _, ok := h.HandleDatagram(set, &scratch); !ok {
			b.Fatal("preload failed")
		}
	}
	sets := make([][]byte, 64)
	for i := range sets {
		// Fixed-width keys keep every set the same wire length, the
		// precondition for packing them into one GSO train.
		sets[i] = memcache.EncodeRequest(memcache.Request{
			Op: memcache.OpSet, Key: fmt.Sprintf("ingest-%02d", i), Noreply: true, Value: []byte("value-abcdef")})
		if len(sets[i]) != len(sets[0]) {
			b.Fatalf("set datagrams not uniform: %d vs %d bytes", len(sets[i]), len(sets[0]))
		}
	}
	setLen := len(sets[0])
	e := startLoopbackEngine(b, backend, h, dataplane.Config{Name: "bench-kvs-ingest"})
	defer e.Close()
	addr := e.LocalAddr().String()

	const window = 32 // 31 noreply sets + 1 synchronizing get
	windows := b.N/(loopbackClients*window) + 1
	before := h.StatsCounters().Snapshot()["sets"]
	var acked atomic.Uint64

	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < loopbackClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("udp", addr)
			if err != nil {
				b.Error(err)
				return
			}
			defer conn.Close()
			udp := conn.(*net.UDPConn)
			// The sync GET is shorter than one segment, so it passes
			// through the GSO socket as a plain datagram.
			useGSO := netio.EnableGSO(udp, setLen) == nil
			bc := netio.NewBatchConn(udp)
			syncGet := memcache.EncodeRequest(memcache.Request{Op: memcache.OpGet, Key: fmt.Sprintf("sync-%d", c)})
			train := make([]byte, 0, (window-1)*setLen)
			tx := make([]netio.Message, 0, window)
			rx := make([]netio.Message, 4)
			for i := range rx {
				rx[i].Buf = make([]byte, 2048)
			}
			next := 0
			for w := 0; w < windows; w++ {
				if useGSO {
					train = train[:0]
					for k := 0; k < window-1; k++ {
						train = append(train, sets[next%len(sets)]...)
						next++
					}
					if _, err := udp.Write(train); err != nil {
						b.Error(err)
						return
					}
					if _, err := udp.Write(syncGet); err != nil {
						b.Error(err)
						return
					}
				} else {
					tx = tx[:0]
					for k := 0; k < window-1; k++ {
						r := sets[next%len(sets)]
						next++
						tx = append(tx, netio.Message{Buf: r, N: len(r)})
					}
					tx = append(tx, netio.Message{Buf: syncGet, N: len(syncGet)})
					if _, err := bc.WriteBatch(tx); err != nil {
						b.Error(err)
						return
					}
				}
				_ = bc.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
				if _, err := bc.ReadBatch(rx); err == nil {
					acked.Add(1)
				} // else: the window's ack was lost; count it and move on
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Throughput is what the server actually processed: sets applied to
	// the store (the counter is authoritative — noreply sends no ack)
	// plus answered synchronizing gets.
	applied := h.StatsCounters().Snapshot()["sets"] - before
	if elapsed > 0 {
		b.ReportMetric(float64(applied+acked.Load())/elapsed.Seconds()/1000, "achieved-kpps")
	}
	totalSets := uint64(loopbackClients) * uint64(windows) * (window - 1)
	b.ReportMetric(float64(applied)/float64(totalSets)*100, "delivered-%")
}

// BenchmarkLoopbackBatchedDNS: mixed-case A queries answered from the
// precompiled wire cache through dns.Handler.HandleBatch.
func BenchmarkLoopbackBatchedDNS(b *testing.B) { benchDNSLoopback(b, "mmsg") }

// BenchmarkLoopbackUringDNS is the same serving path with the io_uring
// transport under the engine.
func BenchmarkLoopbackUringDNS(b *testing.B) { benchDNSLoopback(b, "uring") }

func benchDNSLoopback(b *testing.B, backend string) {
	zone := dns.NewZone()
	zone.PopulateSequential(64)
	h := dns.NewHandler(zone)
	reqs := make([][]byte, 64)
	for i := range reqs {
		name := dns.SequentialName(i)
		if i%2 == 1 {
			name = "HOST" + name[4:] // exercise the fold path under load
		}
		q, err := dns.Encode(dns.NewQuery(uint16(i), name))
		if err != nil {
			b.Fatal(err)
		}
		reqs[i] = q
	}
	benchProtoLoopback(b, backend, h, dataplane.Config{Name: "bench-dns", MaxDatagram: 4096}, reqs)
}

// BenchmarkLoopbackBatchedPaxos: steady-state Phase2A re-votes answered
// with 2Bs through paxos.LiveAcceptor.HandleBatch (no learner fan-out,
// so the measured path is decode -> table -> encode).
func BenchmarkLoopbackBatchedPaxos(b *testing.B) { benchPaxosLoopback(b, "mmsg") }

// BenchmarkLoopbackUringPaxos is the same serving path with the io_uring
// transport under the engine.
func BenchmarkLoopbackUringPaxos(b *testing.B) { benchPaxosLoopback(b, "uring") }

func benchPaxosLoopback(b *testing.B, backend string) {
	a := paxos.NewLiveAcceptor(1, nil, func(string, paxos.Msg) {})
	scratch := make([]byte, 0, 4096)
	reqs := make([][]byte, 64)
	for i := range reqs {
		reqs[i] = paxos.Encode(paxos.Msg{Type: paxos.MsgPhase2A, Instance: uint64(i + 1),
			Ballot: 3, Seq: uint64(i), ClientAddr: "client-1:2345", Value: []byte("value-of-modest-size")})
		if _, ok := a.HandleDatagram(reqs[i], &scratch); !ok {
			b.Fatal("seed vote failed")
		}
	}
	benchProtoLoopback(b, backend, a, dataplane.Config{Name: "bench-paxos", MaxDatagram: 4096}, reqs)
}

// TX-mode comparison benches: the same three serving paths with reply
// transmission train-oriented end to end — the server coalesces each
// flush's same-destination replies into UDP_SEGMENT trains (-gsotx) and
// the clients pack each request window into one train. Uniform-size
// requests (fixed-width keys/names) keep both directions on the
// equal-segment fast path; tx-segs-per-train reports how many wire
// datagrams each reply-train send carried.

// BenchmarkLoopbackBatchedGSOKVS: framed GET hits, mmsg engine, train TX
// both ways.
func BenchmarkLoopbackBatchedGSOKVS(b *testing.B) { benchKVSGSOLoopback(b, "mmsg") }

// BenchmarkLoopbackUringGSOKVS: the same with reply trains riding the
// io_uring SQ as SENDMSG SQEs.
func BenchmarkLoopbackUringGSOKVS(b *testing.B) { benchKVSGSOLoopback(b, "uring") }

func benchKVSGSOLoopback(b *testing.B, backend string) {
	h := kvs.NewHandler(kvs.NewShardedStore(loopbackShards, 0))
	scratch := make([]byte, 0, 4096)
	reqs := make([][]byte, 64)
	for i := range reqs {
		// Fixed-width keys make every request — and every reply — the
		// same wire length, so both directions coalesce fully.
		key := fmt.Sprintf("key-%02d", i)
		set := memcache.EncodeFrame(memcache.Frame{RequestID: 1, Total: 1},
			memcache.EncodeRequest(memcache.Request{Op: memcache.OpSet, Key: key, Value: []byte("value-abcdef")}))
		if _, ok := h.HandleDatagram(set, &scratch); !ok {
			b.Fatal("preload failed")
		}
		reqs[i] = memcache.EncodeFrame(memcache.Frame{RequestID: uint16(i), Total: 1},
			memcache.EncodeRequest(memcache.Request{Op: memcache.OpGet, Key: key}))
	}
	benchProtoLoopbackTx(b, backend, true, h, dataplane.Config{Name: "bench-kvs-gsotx"}, reqs)
}

// BenchmarkLoopbackBatchedGSODNS: wire-cache A answers, mmsg engine,
// train TX both ways.
func BenchmarkLoopbackBatchedGSODNS(b *testing.B) { benchDNSGSOLoopback(b, "mmsg") }

// BenchmarkLoopbackUringGSODNS: the same over the io_uring transport.
func BenchmarkLoopbackUringGSODNS(b *testing.B) { benchDNSGSOLoopback(b, "uring") }

func benchDNSGSOLoopback(b *testing.B, backend string) {
	zone := dns.NewZone()
	zone.PopulateSequential(64)
	// host10..host63: two-digit names, so every query (and answer) is the
	// same wire length.
	reqs := make([][]byte, 54)
	for i := range reqs {
		name := dns.SequentialName(10 + i)
		if i%2 == 1 {
			name = "HOST" + name[4:] // keep the fold path loaded
		}
		q, err := dns.Encode(dns.NewQuery(uint16(i), name))
		if err != nil {
			b.Fatal(err)
		}
		reqs[i] = q
	}
	benchProtoLoopbackTx(b, backend, true, dns.NewHandler(zone),
		dataplane.Config{Name: "bench-dns-gsotx", MaxDatagram: 4096}, reqs)
}

// BenchmarkLoopbackBatchedGSOPaxos: Phase2A re-votes, mmsg engine, train
// TX both ways (the paxos codec is fixed-width, so votes are uniform).
func BenchmarkLoopbackBatchedGSOPaxos(b *testing.B) { benchPaxosGSOLoopback(b, "mmsg") }

// BenchmarkLoopbackUringGSOPaxos: the same over the io_uring transport.
func BenchmarkLoopbackUringGSOPaxos(b *testing.B) { benchPaxosGSOLoopback(b, "uring") }

func benchPaxosGSOLoopback(b *testing.B, backend string) {
	a := paxos.NewLiveAcceptor(1, nil, func(string, paxos.Msg) {})
	scratch := make([]byte, 0, 4096)
	reqs := make([][]byte, 64)
	for i := range reqs {
		reqs[i] = paxos.Encode(paxos.Msg{Type: paxos.MsgPhase2A, Instance: uint64(i + 1),
			Ballot: 3, Seq: uint64(i), ClientAddr: "client-1:2345", Value: []byte("value-of-modest-size")})
		if _, ok := a.HandleDatagram(reqs[i], &scratch); !ok {
			b.Fatal("seed vote failed")
		}
	}
	benchProtoLoopbackTx(b, backend, true, a,
		dataplane.Config{Name: "bench-paxos-gsotx", MaxDatagram: 4096}, reqs)
}
