#!/usr/bin/env bash
# Loopback shift-under-load smoke: build inckvsd and incloadgen, start
# the daemon with the NIC offload tier and a low crossover, drive a
# phased ramp across the threshold, and assert on the /v1 control API
# that a real placement shift happened and the tier served traffic.
#
# INCKVSD_EXTRA_FLAGS / INCLOADGEN_EXTRA_FLAGS let CI run the same
# assertions in batched per-shard-socket mode (e.g. "-sockets 2").
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
trap 'kill "${KVSD_PID:-}" 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/inckvsd" ./cmd/inckvsd
go build -o "$BIN/incloadgen" ./cmd/incloadgen

ADDR=127.0.0.1:11311
CTRL=127.0.0.1:18080
# shellcheck disable=SC2086  # extra flags are intentionally word-split
"$BIN/inckvsd" -addr "$ADDR" -ctrl "$CTRL" -nictier -crossover 2 -shards 2 \
  ${INCKVSD_EXTRA_FLAGS:-} &
KVSD_PID=$!

# Wait for the control API to report the dataplane serving, with
# exponential backoff instead of a fixed boot sleep: fast machines move on
# after ~20ms, slow CI gets a full 10s budget.
wait_healthy() {
  local url=$1 deadline=$((SECONDS + 10)) pause=0.02
  until curl -sf -o /dev/null "$url"; do
    if [ "$SECONDS" -ge "$deadline" ]; then
      echo "FAIL: $url not healthy after 10s" >&2
      return 1
    fi
    sleep "$pause"
    pause=$(awk -v p="$pause" 'BEGIN { p *= 2; print (p > 0.5) ? 0.5 : p }')
  done
}
wait_healthy "http://$CTRL/v1/healthz"

# Ramp over the 2.2 kpps to-network threshold, hold, ramp back under the
# 1.4 kpps to-host threshold.
# shellcheck disable=SC2086
"$BIN/incloadgen" -proto kvs -target "$ADDR" -keys 200 \
  ${INCLOADGEN_EXTRA_FLAGS:-} \
  -profile 'ramp:0-8000:2s,hold:8000:3s,ramp:8000-0:2s'

# Let the orchestrator observe the quiet tail (to-host window is 2s):
# poll for the return to host instead of guessing with a fixed sleep.
deadline=$((SECONDS + 10))
while :; do
  status=$(curl -sf "http://$CTRL/v1/services/kvs")
  echo "$status" | grep -q '"placement":"host"' && break
  [ "$SECONDS" -ge "$deadline" ] && break # asserts below still diagnose
  sleep 0.25
done
echo "service status: $status"
dataplane=$(curl -sf "http://$CTRL/v1/services/kvs/dataplane")
echo "dataplane: $dataplane"

shifts=$(echo "$status" | grep -o '"shifts":[0-9]*' | cut -d: -f2)
if [ "${shifts:-0}" -lt 1 ]; then
  echo "FAIL: expected at least one placement shift, got ${shifts:-0}" >&2
  exit 1
fi
echo "$status" | grep -q '"last_shift_duration"' || {
  echo "FAIL: shift duration missing from /v1/services" >&2
  exit 1
}
# The aggregate "offloaded" field marshals after the per-shard array, so
# the last match is the engine-wide total.
offloaded=$(echo "$dataplane" | grep -o '"offloaded":[0-9]*' | tail -1 | cut -d: -f2)
if [ "${offloaded:-0}" -lt 1 ]; then
  echo "FAIL: the NIC tier never served a datagram" >&2
  exit 1
fi
echo "$dataplane" | grep -q '"tier_name":"lake"' || {
  echo "FAIL: tier stats missing from /v1/dataplane" >&2
  exit 1
}
echo "shift smoke OK: shifts=$shifts offloaded=$offloaded"
