#!/usr/bin/env bash
# bench.sh — run the serving-path benchmarks and emit a machine-readable
# snapshot of the repo's bench trajectory.
#
# Covers the dataplane handler hot paths (KVS/DNS/Paxos, single and
# batched — the 0 B/op acceptance surfaces), the codec micro-benches,
# the per-protocol batched and uring loopback throughput benches
# (achieved-kpps) including the TX-mode comparison (per-datagram mmsg vs
# mmsg+GSO-train vs uring+GSO-train reply TX, with tx-segs-per-train
# evidence), the engine three-way transport sweep
# (single/mmsg/uring at 1/2/4 shards) and the NIC-tier hit path.
#
# After writing the snapshot it diffs against the newest committed
# BENCH_*.json via cmd/incbenchdiff and fails (nonzero exit) on any
# hot-path ns/op or loopback kpps regression beyond the tolerance.
#
# Usage:
#   ./scripts/bench.sh                 # ~full run, writes BENCH_9.json
#   BENCH_TIME=1x ./scripts/bench.sh   # CI smoke: one iteration per bench
#   BENCH_OUT=out.json ./scripts/bench.sh
#   BENCH_MAX_REGRESS=75 ./scripts/bench.sh  # cross-host tolerance
#   BENCH_DIFF=0 ./scripts/bench.sh          # skip the regression diff
#
# Output schema (incod-bench/v1): one entry per benchmark with
# ns_per_op / b_per_op / allocs_per_op and any custom metrics
# (achieved-kpps, answered-%) keyed by their go-bench unit.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_9.json}"
BENCHTIME="${BENCH_TIME:-200ms}"
# The loopback throughput benches need a fixed, large-enough request
# count: time-based calibration lands on small b.N where connection
# setup and window round trips dominate and the kpps number is noise.
LOOPTIME="${BENCH_LOOPBACK:-200000x}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

run_bench() {
  local pkg="$1" pattern="$2" benchtime="$3"
  echo ">> go test -bench '$pattern' -benchtime $benchtime $pkg" >&2
  go test -run '^$' -bench "$pattern" -benchtime "$benchtime" "$pkg" \
    | tee /dev/stderr \
    | awk -v pkg="$pkg" '/^Benchmark/ { printf "%s %s\n", pkg, $0 }' >> "$raw"
}

# The serving hot paths and codecs (root suite).
run_bench . 'DataplaneKVS|DataplaneBatchedKVS|DataplaneDNS|DataplaneBatchedDNS|DataplanePaxos|DataplaneBatchedPaxos|DataplaneShardedStore|ShardedStoreScaling|MemcacheParseGet|PaxosCodec|DNSCodec|DNSQuestionView' "$BENCHTIME"
# Per-protocol loopback kpps, batched (recvmmsg) and io_uring modes.
run_bench . 'LoopbackBatched|LoopbackUring' "$LOOPTIME"
# The engine's batched-vs-single loopback comparison plus the three-way
# transport sweep (single/mmsg/uring at 1/2/4 shards).
run_bench ./internal/dataplane 'DataplaneBatchedLoopback|DataplaneSingleReaderLoopback|DataplaneEngineLoopback' "$LOOPTIME"
# The offload tier's zero-alloc GET hit.
run_bench ./internal/nictier 'NICTier' "$BENCHTIME"

goversion="$(go env GOVERSION)"
stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
host_cpu="$(awk -F': ' '/model name/ { print $2; exit }' /proc/cpuinfo 2>/dev/null || true)"

awk -v go="$goversion" -v bt="$BENCHTIME" -v stamp="$stamp" -v cpu="$host_cpu" '
{
  pkg = $1
  name = $2 # as printed by go test (incl. any -GOMAXPROCS suffix)
  iters = $3
  out = sprintf("    {\"name\":\"%s\",\"package\":\"%s\",\"iterations\":%s", name, pkg, iters)
  metrics = ""
  for (i = 4; i + 1 <= NF; i += 2) {
    val = $i
    unit = $(i + 1)
    if (unit == "ns/op")          out = out sprintf(",\"ns_per_op\":%s", val)
    else if (unit == "B/op")      out = out sprintf(",\"b_per_op\":%s", val)
    else if (unit == "allocs/op") out = out sprintf(",\"allocs_per_op\":%s", val)
    else {
      gsub(/"/, "", unit)
      metrics = metrics (metrics == "" ? "" : ",") sprintf("\"%s\":%s", unit, val)
    }
  }
  if (metrics != "") out = out ",\"metrics\":{" metrics "}"
  lines[n++] = out "}"
}
END {
  printf "{\n"
  printf "  \"schema\": \"incod-bench/v1\",\n"
  printf "  \"generated\": \"%s\",\n", stamp
  printf "  \"go\": \"%s\",\n", go
  printf "  \"cpu\": \"%s\",\n", cpu
  printf "  \"benchtime\": \"%s\",\n", bt
  printf "  \"benchmarks\": [\n"
  for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n - 1 ? "," : "")
  printf "  ]\n}\n"
}
' "$raw" > "$OUT"

echo "bench.sh: wrote $(grep -c '"name"' "$OUT") benchmark entries to $OUT" >&2

# Regression gate: diff the fresh snapshot against the newest committed
# BENCH_*.json (by number, skipping the file we just wrote). Same-host
# runs use the strict default; CI smoke on unknown hardware passes a
# generous BENCH_MAX_REGRESS so only collapses fail, not host variance.
if [ "${BENCH_DIFF:-1}" != "0" ]; then
  baseline="$(git ls-files 'BENCH_*.json' | sort -t_ -k2 -n | grep -Fvx "$(basename "$OUT")" | tail -1 || true)"
  if [ -n "$baseline" ]; then
    echo "bench.sh: diffing $OUT against committed $baseline" >&2
    go run ./cmd/incbenchdiff -old "$baseline" -new "$OUT" \
      -tolerance "${BENCH_MAX_REGRESS:-15}"
  else
    echo "bench.sh: no committed BENCH_*.json baseline; skipping diff" >&2
  fi
fi
