#!/usr/bin/env bash
# Fleet day-saving smoke: build the three daemons, incloadgen and
# incfleetd, then let incfleetd spawn a 10-member fleet on loopback,
# replay a compressed 24h demand trace as real UDP traffic, and enforce
# the K=3 offload budget. incfleetd -assert fails the run unless the
# budget held (never more than K lit, no overlapping shifts), the full
# budget was exercised at the daytime peak, no generator saw a wrong
# answer, and the modeled on-demand fleet saved energy over the
# software-only baseline. The machine-readable outcome lands in
# FLEET_6.json (uploaded as a CI artifact).
#
# FLEET_WALL / FLEET_N / FLEET_K / FLEET_EXTRA_FLAGS tune the run; the
# defaults finish in well under a minute of replay.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
OUT=${FLEET_OUT_DIR:-$(mktemp -d)}
trap 'rm -rf "$BIN"' EXIT

go build -o "$BIN" ./cmd/inckvsd ./cmd/incdnsd ./cmd/incpaxosd \
  ./cmd/incloadgen ./cmd/incfleetd

# shellcheck disable=SC2086  # extra flags are intentionally word-split
"$BIN/incfleetd" \
  -n "${FLEET_N:-10}" -k "${FLEET_K:-3}" \
  -wall "${FLEET_WALL:-30s}" -scale 50 -period 300ms -hold 2 \
  -dir "$OUT" -report FLEET_6.json -assert \
  ${FLEET_EXTRA_FLAGS:-}

echo "fleet smoke OK; report:"
cat FLEET_6.json | head -40
