#!/usr/bin/env bash
# Chaos sweep smoke: run the deterministic property harness — the live
# kvs/dns/paxos handlers, NIC tiers and orchestrator on the simulated
# network under seeded fault injection — across CHAOS_SEEDS consecutive
# seeds. Any violation prints the exact `incchaos -prop ... -seed ...`
# command that replays it byte-for-byte and fails the script.
#
# CHAOS_SEEDS (default 1000) and CHAOS_EXTRA_FLAGS tune the run; the
# default sweep finishes in well under a minute.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
trap 'rm -rf "$BIN"' EXIT

go build -o "$BIN" ./cmd/incchaos

# shellcheck disable=SC2086  # extra flags are intentionally word-split
"$BIN/incchaos" -seeds "${CHAOS_SEEDS:-1000}" -quick ${CHAOS_EXTRA_FLAGS:-}
